/**
 * @file
 * Chaos-fuzz harness: scenario serialization, the adversarial generator,
 * the deterministic runner with live invariant monitors, and the
 * delta-debugging minimizer -- including the seeded-bug catches the CI
 * smoke leg depends on (known-good seeds pinned here).
 */

#include <gtest/gtest.h>

#include <string>

#include "dram/address_map.hh"
#include "fuzz/generator.hh"
#include "fuzz/minimizer.hh"
#include "fuzz/runner.hh"
#include "fuzz/scenario.hh"

namespace dve
{
namespace
{

/** Known-good seed for the pool seeded bug (probed at build time). */
constexpr std::uint64_t kPoolBugSeed = 1000192;

TEST(FuzzScenario, SerializeParseRoundTrips)
{
    const std::string text =
        "version 1\n"
        "seed 42\n"
        "protocol dynamic\n"
        "pages 8\n"
        "epoch-ops 64\n"
        "sample-groups 4\n"
        "bug rm-marker-refresh\n"
        "bug skip-deny-invalidate\n"
        "watchdog 2000000\n"
        "expect violation replica-dir\n"
        "step r 0 3 0x1040\n"
        "step w 1 2 0x2080 0xbeef\n"
        "step f scope=chip,socket=1,chip=3\n"
        "step h scope=chip,socket=1,chip=3\n"
        "step s\n"
        "step m\n";
    std::string err;
    const auto sc = FuzzScenario::parse(text, &err);
    ASSERT_TRUE(sc) << err;
    EXPECT_EQ(sc->seed, 42u);
    EXPECT_EQ(sc->protocol, DveProtocol::Dynamic);
    EXPECT_EQ(sc->footprintPages, 8u);
    EXPECT_EQ(sc->epochOps, 64u);
    EXPECT_EQ(sc->sampleGroups, 4u);
    EXPECT_TRUE(sc->bugRmMarkerRefresh);
    EXPECT_TRUE(sc->bugSkipDenyInvalidate);
    EXPECT_EQ(sc->watchdogBudget, 2000000u);
    ASSERT_TRUE(sc->expect.monitor);
    EXPECT_EQ(*sc->expect.monitor, InvariantMonitor::ReplicaDir);
    ASSERT_EQ(sc->steps.size(), 6u);
    EXPECT_EQ(sc->steps[0].op, FuzzOp::Read);
    EXPECT_EQ(sc->steps[0].addr, 0x1040u);
    EXPECT_EQ(sc->steps[1].op, FuzzOp::Write);
    EXPECT_EQ(sc->steps[1].value, 0xbeefu);
    EXPECT_EQ(sc->steps[2].op, FuzzOp::Inject);
    EXPECT_EQ(sc->steps[2].fault.scope, FaultScope::Chip);
    EXPECT_EQ(sc->steps[3].op, FuzzOp::Heal);
    EXPECT_EQ(sc->steps[4].op, FuzzOp::Scrub);
    EXPECT_EQ(sc->steps[5].op, FuzzOp::Maintain);

    // serialize() is canonical: parsing its output reproduces it
    // byte-for-byte (the fixed point the corpus files live at).
    const std::string canon = sc->serialize();
    const auto back = FuzzScenario::parse(canon, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(back->serialize(), canon);
}

TEST(FuzzScenario, ParseRejectsMalformedInput)
{
    const auto expect_reject = [](const std::string &text) {
        std::string err;
        EXPECT_FALSE(FuzzScenario::parse(text, &err)) << text;
        EXPECT_FALSE(err.empty()) << text;
    };
    expect_reject("version 2\nseed 1\n");           // unknown version
    expect_reject("seed 1\nprotocol allow\n");      // missing version
    expect_reject("version 1\nprotocol moesi\n");   // unknown protocol
    expect_reject("version 1\nbug heisenbug\n");    // unknown bug name
    expect_reject("version 1\nwatchdog 0\n");       // zero budget
    expect_reject("version 1\nexpect violation x\n"); // unknown monitor
    expect_reject("version 1\nstep r 0\n");         // truncated step
    expect_reject("version 1\nstep q 0 0 0\n");     // unknown step kind
    expect_reject("version 1\nstep f scope=nope\n"); // bad fault spec
    expect_reject("version 1\nfrobnicate 3\n");     // unknown key
}

TEST(FuzzGenerator, PureFunctionOfConfig)
{
    GeneratorConfig cfg;
    cfg.seed = 7;
    cfg.ops = 200;
    const FuzzScenario a = generateScenario(cfg);
    const FuzzScenario b = generateScenario(cfg);
    EXPECT_EQ(a.serialize(), b.serialize());
    EXPECT_EQ(a.steps.size(), 200u);

    cfg.seed = 8;
    const FuzzScenario c = generateScenario(cfg);
    EXPECT_NE(a.serialize(), c.serialize());
}

TEST(FuzzGenerator, StepsStayInsideTheFootprint)
{
    GeneratorConfig cfg;
    cfg.seed = 11;
    cfg.ops = 300;
    const FuzzScenario sc = generateScenario(cfg);
    const Addr limit =
        static_cast<Addr>(cfg.footprintPages) * pageBytes;
    for (const auto &st : sc.steps) {
        if (st.op != FuzzOp::Read && st.op != FuzzOp::Write)
            continue;
        EXPECT_LT(st.addr, limit);
        EXPECT_LT(st.socket, cfg.sockets);
        EXPECT_LT(st.core, cfg.coresPerSocket);
    }
}

TEST(FuzzGenerator, HammerModeShapesAttackAndVictims)
{
    GeneratorConfig cfg;
    cfg.seed = 13;
    cfg.ops = 400;
    cfg.hammerMode = true;
    cfg.footprintPages = 32; // victim rows 0..3 inside the footprint
    const FuzzScenario sc = generateScenario(cfg);

    // Pure function of the config, serializable round-trip included
    // (RowDisturb specs must survive the text format).
    EXPECT_EQ(sc.serialize(), generateScenario(cfg).serialize());
    std::string err;
    const auto back = FuzzScenario::parse(sc.serialize(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->serialize(), sc.serialize());

    // Every inject is a scripted RowDisturb flip on a victim row of the
    // hammered bank, and the access stream leans on the aggressors.
    std::uint64_t injects = 0, aggressorReads = 0;
    const AddressMap amap(DramConfig::ddr4Replicated());
    for (const auto &st : sc.steps) {
        if (st.op == FuzzOp::Inject) {
            ++injects;
            EXPECT_EQ(st.fault.scope, FaultScope::RowDisturb);
            EXPECT_EQ(st.fault.bank, 0u);
            EXPECT_TRUE(st.fault.row == 0 || st.fault.row == 3)
                << st.fault.row;
            EXPECT_TRUE(st.fault.transient);
        } else if (st.op == FuzzOp::Read) {
            const auto c = amap.decode(st.addr);
            if (c.bank == 0 && (c.row == 1 || c.row == 2))
                ++aggressorReads;
        }
    }
    EXPECT_GT(injects, 0u);
    EXPECT_GT(aggressorReads, cfg.ops / 2);
}

TEST(FuzzRunner, HammerScenariosStayCleanUnderMonitors)
{
    // The invariant monitors must hold against a read-disturbance
    // attack exactly as they do for the classical chaos mix.
    for (const auto proto : {DveProtocol::Allow, DveProtocol::Deny,
                             DveProtocol::Dynamic}) {
        GeneratorConfig cfg;
        cfg.seed = 33;
        cfg.ops = 300;
        cfg.protocol = proto;
        cfg.hammerMode = true;
        cfg.footprintPages = 32;
        const FuzzRunResult r = runScenario(generateScenario(cfg));
        EXPECT_FALSE(r.violated)
            << dveProtocolName(proto) << ": "
            << (r.violations.empty()
                    ? std::string("?")
                    : formatViolation(r.violations.front()));
        EXPECT_EQ(r.stepsRun, 300u);
    }
}

TEST(FuzzRunner, ByteIdenticalReplay)
{
    GeneratorConfig cfg;
    cfg.seed = 5;
    cfg.ops = 200;
    const FuzzScenario sc = generateScenario(cfg);
    FuzzRunOptions opt;
    opt.traceCapacity = 4096;
    const FuzzRunResult r1 = runScenario(sc, opt);
    const FuzzRunResult r2 = runScenario(sc, opt);
    EXPECT_EQ(r1.digest, r2.digest);
    EXPECT_EQ(r1.log, r2.log);
    EXPECT_EQ(r1.traceJson, r2.traceJson);
    EXPECT_FALSE(r1.traceJson.empty());
    EXPECT_EQ(r1.stepsRun, 200u);
    EXPECT_FALSE(r1.violated);
}

TEST(FuzzRunner, MonitorsDoNotPerturbTheRun)
{
    // The monitors are read-only sweeps: a clean scenario must produce
    // the same digest and step log with checks on and off.
    GeneratorConfig cfg;
    cfg.seed = 9;
    cfg.ops = 200;
    const FuzzScenario sc = generateScenario(cfg);
    FuzzRunOptions on, off;
    off.invariantChecks = false;
    const FuzzRunResult ron = runScenario(sc, on);
    const FuzzRunResult roff = runScenario(sc, off);
    EXPECT_FALSE(ron.violated);
    EXPECT_FALSE(roff.violated);
    EXPECT_TRUE(roff.violations.empty());
    EXPECT_EQ(ron.digest, roff.digest);
    EXPECT_EQ(ron.log, roff.log);
}

TEST(FuzzRunner, CleanScenariosStayClean)
{
    for (const auto proto : {DveProtocol::Allow, DveProtocol::Deny,
                             DveProtocol::Dynamic}) {
        GeneratorConfig cfg;
        cfg.seed = 21;
        cfg.ops = 300;
        cfg.protocol = proto;
        const FuzzRunResult r = runScenario(generateScenario(cfg));
        EXPECT_FALSE(r.violated)
            << dveProtocolName(proto) << ": "
            << (r.violations.empty()
                    ? std::string("?")
                    : formatViolation(r.violations.front()));
    }
}

TEST(FuzzRunner, SeededRmMarkerRefreshIsCaught)
{
    // Known-good seed (probed at harness-build time): the deep bug
    // needs deny-phase RM markers surviving a dynamic flip into a dirty
    // eviction, which only some interleavings produce.
    GeneratorConfig cfg;
    cfg.seed = 2;
    cfg.ops = 400;
    cfg.protocol = DveProtocol::Dynamic;
    cfg.bugRmMarkerRefresh = true;
    const FuzzScenario sc = generateScenario(cfg);
    ASSERT_TRUE(sc.bugRmMarkerRefresh);
    FuzzRunOptions opt;
    opt.traceCapacity = 4096; // arm the tracer so the report has a tail
    const FuzzRunResult r = runScenario(sc, opt);
    ASSERT_TRUE(r.violated);
    ASSERT_FALSE(r.violations.empty());
    EXPECT_EQ(r.violations.front().monitor, InvariantMonitor::ReplicaDir);
    // The report is self-contained: monitor, tick, line, tracer tail.
    const std::string report = formatViolation(r.violations.front());
    EXPECT_NE(report.find("replica-dir"), std::string::npos);
    EXPECT_NE(report.find("recent events"), std::string::npos);
}

TEST(FuzzRunner, SeededSkipDenyInvalidateShrinksToATinyRepro)
{
    // The shallow bug: the deny protocol's eager RM push skips the
    // replica-socket cache invalidation, so a stale local copy commits
    // -- caught by the data-value monitor, and minimal at ~3 steps
    // (replica read, remote write, stale replica read).
    GeneratorConfig cfg;
    cfg.seed = 3;
    cfg.ops = 400;
    cfg.protocol = DveProtocol::Deny;
    cfg.bugSkipDenyInvalidate = true;
    const FuzzScenario sc = generateScenario(cfg);
    const FuzzRunResult r = runScenario(sc);
    ASSERT_TRUE(r.violated);
    EXPECT_EQ(r.violations.front().monitor, InvariantMonitor::DataValue);

    const ShrinkResult shrunk = shrinkScenario(sc);
    ASSERT_TRUE(shrunk.reproduced);
    EXPECT_EQ(shrunk.monitor, InvariantMonitor::DataValue);
    EXPECT_LE(shrunk.finalSteps, 10u);
    EXPECT_LT(shrunk.finalSteps, shrunk.initialSteps);
    // The minimized scenario is a valid corpus entry: it serializes
    // with the expectation stamped, parses back, and still fires.
    ASSERT_TRUE(shrunk.minimized.expect.monitor);
    EXPECT_EQ(*shrunk.minimized.expect.monitor,
              InvariantMonitor::DataValue);
    std::string err;
    const auto reparsed =
        FuzzScenario::parse(shrunk.minimized.serialize(), &err);
    ASSERT_TRUE(reparsed) << err;
    const FuzzRunResult again = runScenario(*reparsed);
    ASSERT_TRUE(again.violated);
    EXPECT_EQ(again.violations.front().monitor,
              InvariantMonitor::DataValue);
}

TEST(FuzzRunner, ShrinkIsDeterministic)
{
    GeneratorConfig cfg;
    cfg.seed = 3;
    cfg.ops = 400;
    cfg.protocol = DveProtocol::Deny;
    cfg.bugSkipDenyInvalidate = true;
    const FuzzScenario sc = generateScenario(cfg);
    const ShrinkResult a = shrinkScenario(sc);
    const ShrinkResult b = shrinkScenario(sc);
    ASSERT_TRUE(a.reproduced);
    EXPECT_EQ(a.minimized.serialize(), b.minimized.serialize());
    EXPECT_EQ(a.probes, b.probes);
}

TEST(FuzzRunner, CleanScenarioDoesNotShrink)
{
    GeneratorConfig cfg;
    cfg.seed = 21;
    cfg.ops = 100;
    const FuzzScenario sc = generateScenario(cfg);
    const ShrinkResult s = shrinkScenario(sc);
    EXPECT_FALSE(s.reproduced);
    EXPECT_EQ(s.minimized.serialize(), sc.serialize());
    EXPECT_EQ(s.probes, 1u); // one probe to learn it's clean
}

TEST(FuzzRunner, LivenessWatchdogFires)
{
    // A 1-tick budget makes any real access overshoot: the liveness
    // monitor must flag it (and only when checks are armed).
    std::string err;
    const auto sc = FuzzScenario::parse("version 1\n"
                                        "seed 1\n"
                                        "protocol deny\n"
                                        "watchdog 1\n"
                                        "step r 0 0 0x40\n",
                                        &err);
    ASSERT_TRUE(sc) << err;
    const FuzzRunResult r = runScenario(*sc);
    ASSERT_TRUE(r.violated);
    EXPECT_EQ(r.violations.front().monitor, InvariantMonitor::Liveness);

    FuzzRunOptions off;
    off.invariantChecks = false;
    EXPECT_FALSE(runScenario(*sc, off).violated);
}

TEST(FuzzScenario, ProtocolAndMonitorNamesRoundTrip)
{
    for (const auto p : {DveProtocol::Allow, DveProtocol::Deny,
                         DveProtocol::Dynamic}) {
        const auto back = parseDveProtocol(dveProtocolName(p));
        ASSERT_TRUE(back) << dveProtocolName(p);
        EXPECT_EQ(*back, p);
    }
    EXPECT_FALSE(parseDveProtocol("mesi"));
    for (unsigned i = 0; i < numInvariantMonitors; ++i) {
        const auto m = static_cast<InvariantMonitor>(i);
        const auto back = parseInvariantMonitor(invariantMonitorName(m));
        ASSERT_TRUE(back) << invariantMonitorName(m);
        EXPECT_EQ(*back, m);
    }
    EXPECT_FALSE(parseInvariantMonitor("heisenbug"));
}

TEST(FuzzScenarioPool, HeaderRoundTripsAndStaysAbsentWhenZero)
{
    // Pool header round-trips through the canonical text form.
    const std::string text = "version 1\n"
                             "seed 9\n"
                             "protocol deny\n"
                             "pool 3\n"
                             "bug skip-demotion-on-partition\n"
                             "step r 0 0 0x40\n";
    std::string err;
    const auto sc = FuzzScenario::parse(text, &err);
    ASSERT_TRUE(sc) << err;
    EXPECT_EQ(sc->poolNodes, 3u);
    EXPECT_TRUE(sc->bugSkipDemotionOnPartition);
    const std::string canon = sc->serialize();
    EXPECT_NE(canon.find("pool 3\n"), std::string::npos);
    EXPECT_NE(canon.find("bug skip-demotion-on-partition\n"),
              std::string::npos);
    const auto back = FuzzScenario::parse(canon, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(back->serialize(), canon);

    // poolNodes == 0 serializes with NO pool line at all: pre-pool
    // corpus files stay byte-identical.
    FuzzScenario plain;
    EXPECT_EQ(plain.serialize().find("pool"), std::string::npos);

    // Node-count sanity is enforced at parse time.
    EXPECT_FALSE(FuzzScenario::parse("version 1\npool 65\n", &err));
    EXPECT_FALSE(err.empty());
}

TEST(FuzzScenarioMetadata, HeaderRoundTripsAndStaysAbsentWhenDisarmed)
{
    // Metadata headers round-trip through the canonical text form.
    const std::string text = "version 1\n"
                             "seed 11\n"
                             "protocol deny\n"
                             "meta-protection parity\n"
                             "bug skip-rebuild-on-scrub\n"
                             "step r 0 0 0x40\n";
    std::string err;
    const auto sc = FuzzScenario::parse(text, &err);
    ASSERT_TRUE(sc) << err;
    EXPECT_TRUE(sc->metadataFaults);
    EXPECT_EQ(sc->metaProtection, MetadataProtection::Parity);
    EXPECT_TRUE(sc->bugSkipRebuildOnScrub);
    const std::string canon = sc->serialize();
    EXPECT_NE(canon.find("meta-protection parity\n"), std::string::npos);
    EXPECT_NE(canon.find("bug skip-rebuild-on-scrub\n"),
              std::string::npos);
    const auto back = FuzzScenario::parse(canon, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(back->serialize(), canon);

    // Disarmed scenarios serialize with NO metadata lines at all:
    // pre-metadata corpus files stay byte-identical.
    FuzzScenario plain;
    EXPECT_EQ(plain.serialize().find("meta-protection"),
              std::string::npos);
    EXPECT_EQ(plain.serialize().find("skip-rebuild-on-scrub"),
              std::string::npos);

    // Tier names are validated at parse time.
    EXPECT_FALSE(
        FuzzScenario::parse("version 1\nmeta-protection mirror\n", &err));
    EXPECT_FALSE(err.empty());
}

TEST(FuzzGeneratorPool, PoolModeEmitsOnlyPoolScaleFabricFaults)
{
    GeneratorConfig cfg;
    cfg.seed = 17;
    cfg.ops = 400;
    cfg.poolMode = true;
    const FuzzScenario sc = generateScenario(cfg);
    EXPECT_EQ(sc.poolNodes, cfg.poolNodes);
    EXPECT_EQ(sc.serialize(), generateScenario(cfg).serialize());

    std::uint64_t poolFaults = 0;
    for (const auto &st : sc.steps) {
        if (st.op != FuzzOp::Inject)
            continue;
        if (!isFabricScope(st.fault.scope))
            continue;
        // Fabric-share injects become pool-scale episodes, never the
        // socket-to-socket link faults of the non-pool topology.
        ASSERT_TRUE(st.fault.scope == FaultScope::PoolNodeOffline
                    || st.fault.scope == FaultScope::FabricPartition)
            << faultScopeName(st.fault.scope);
        if (st.fault.scope == FaultScope::PoolNodeOffline) {
            EXPECT_LT(st.fault.socket, cfg.poolNodes);
        }
        ++poolFaults;
    }
    EXPECT_GT(poolFaults, 0u);

    // Without pool mode no pool-scale scope is ever generated.
    cfg.poolMode = false;
    for (const auto &st : generateScenario(cfg).steps) {
        EXPECT_NE(st.fault.scope, FaultScope::PoolNodeOffline);
        EXPECT_NE(st.fault.scope, FaultScope::FabricPartition);
    }
}

TEST(FuzzRunnerPool, PoolScenariosStayCleanUnderMonitors)
{
    for (const auto proto : {DveProtocol::Allow, DveProtocol::Deny,
                             DveProtocol::Dynamic}) {
        GeneratorConfig cfg;
        cfg.seed = 27;
        cfg.ops = 300;
        cfg.protocol = proto;
        cfg.poolMode = true;
        const FuzzRunResult r = runScenario(generateScenario(cfg));
        EXPECT_FALSE(r.violated)
            << dveProtocolName(proto) << ": "
            << (r.violations.empty()
                    ? std::string("?")
                    : formatViolation(r.violations.front()));
        EXPECT_EQ(r.stepsRun, 300u);
        EXPECT_EQ(r.sdc, 0u);
    }
}

TEST(FuzzRunnerPool, SeededSkipDemotionOnPartitionIsCaughtAndShrinks)
{
    // Known-good seed (probed at harness-build time): the pool bug
    // needs a write-back lost to an active partition, a heal, and a
    // replica-side read of the stale pool copy before any rewrite --
    // only some interleavings line those up.
    GeneratorConfig cfg;
    cfg.seed = kPoolBugSeed;
    cfg.ops = 400;
    cfg.protocol = DveProtocol::Allow;
    cfg.poolMode = true;
    cfg.bugSkipDemotionOnPartition = true;
    const FuzzScenario sc = generateScenario(cfg);
    ASSERT_TRUE(sc.bugSkipDemotionOnPartition);
    ASSERT_EQ(sc.poolNodes, 3u);
    const FuzzRunResult r = runScenario(sc);
    ASSERT_TRUE(r.violated);
    EXPECT_EQ(r.violations.front().monitor, InvariantMonitor::DataValue);

    // Shrinks to a small repro that still fires standalone.
    const ShrinkResult shrunk = shrinkScenario(sc);
    ASSERT_TRUE(shrunk.reproduced);
    EXPECT_EQ(shrunk.monitor, InvariantMonitor::DataValue);
    EXPECT_LT(shrunk.finalSteps, shrunk.initialSteps);
    ASSERT_TRUE(shrunk.minimized.expect.monitor);
    std::string err;
    const auto reparsed =
        FuzzScenario::parse(shrunk.minimized.serialize(), &err);
    ASSERT_TRUE(reparsed) << err;
    EXPECT_EQ(reparsed->poolNodes, 3u); // pool header survives shrinking
    const FuzzRunResult again = runScenario(*reparsed);
    ASSERT_TRUE(again.violated);
    EXPECT_EQ(again.violations.front().monitor,
              InvariantMonitor::DataValue);
}

} // namespace
} // namespace dve
