#include "fault/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "ecc/line_codec.hh"

namespace dve
{

const char *
campaignSchemeName(CampaignScheme s)
{
    switch (s) {
      case CampaignScheme::BaselineNone: return "baseline-none";
      case CampaignScheme::BaselineSecDed: return "baseline-secded";
      case CampaignScheme::BaselineDetect: return "baseline-dsd-detect";
      case CampaignScheme::DveAllow: return "dve-allow";
      case CampaignScheme::DveDeny: return "dve-deny";
      case CampaignScheme::BaselinePreventive:
        return "baseline-preventive";
      case CampaignScheme::LocalChipkill: return "local-chipkill";
      case CampaignScheme::TwoTier: return "two-tier";
      case CampaignScheme::DveMetaNone: return "dve-meta-none";
      case CampaignScheme::DveMetaParity: return "dve-meta-parity";
      case CampaignScheme::DveMetaEcc: return "dve-meta-ecc";
    }
    return "?";
}

const char *
fabricScenarioName(FabricScenario s)
{
    switch (s) {
      case FabricScenario::None: return "none";
      case FabricScenario::LinkFlap: return "link-flap";
      case FabricScenario::LossyLink: return "lossy-link";
      case FabricScenario::SocketOffline: return "socket-offline";
      case FabricScenario::PoolOffline: return "pool-node-offline";
      case FabricScenario::Partition: return "fabric-partition";
    }
    return "?";
}

std::optional<FabricScenario>
parseFabricScenario(const char *name)
{
    for (unsigned i = 0; i < numFabricScenarios; ++i) {
        const auto s = static_cast<FabricScenario>(i);
        if (std::strcmp(name, fabricScenarioName(s)) == 0)
            return s;
    }
    return std::nullopt;
}

const char *
disturbScenarioName(DisturbScenario s)
{
    switch (s) {
      case DisturbScenario::None: return "none";
      case DisturbScenario::HammerSingle: return "hammer-single";
      case DisturbScenario::HammerManySided: return "hammer-manysided";
      case DisturbScenario::HammerUnderRefreshPressure:
        return "hammer-under-refresh-pressure";
    }
    return "?";
}

std::optional<DisturbScenario>
parseDisturbScenario(const char *name)
{
    for (unsigned i = 0; i < numDisturbScenarios; ++i) {
        const auto s = static_cast<DisturbScenario>(i);
        if (std::strcmp(name, disturbScenarioName(s)) == 0)
            return s;
    }
    return std::nullopt;
}

const char *
policyScenarioName(PolicyScenario s)
{
    switch (s) {
      case PolicyScenario::None: return "none";
      case PolicyScenario::Diurnal: return "policy-diurnal";
      case PolicyScenario::FlashCrowd: return "policy-flash-crowd";
      case PolicyScenario::BudgetSqueeze: return "policy-budget-squeeze";
    }
    return "?";
}

std::optional<PolicyScenario>
parsePolicyScenario(const char *name)
{
    for (unsigned i = 0; i < numPolicyScenarios; ++i) {
        const auto s = static_cast<PolicyScenario>(i);
        if (std::strcmp(name, policyScenarioName(s)) == 0)
            return s;
    }
    return std::nullopt;
}

const char *
metadataScenarioName(MetadataScenario s)
{
    switch (s) {
      case MetadataScenario::None: return "none";
      case MetadataScenario::MetadataStorm: return "metadata-storm";
      case MetadataScenario::MetadataUnderLoad:
        return "metadata-under-load";
    }
    return "?";
}

std::optional<MetadataScenario>
parseMetadataScenario(const char *name)
{
    for (unsigned i = 0; i < numMetadataScenarios; ++i) {
        const auto s = static_cast<MetadataScenario>(i);
        if (std::strcmp(name, metadataScenarioName(s)) == 0)
            return s;
    }
    return std::nullopt;
}

void
applyDisturbPreset(CampaignConfig &cfg, DisturbScenario sc)
{
    cfg.disturb = sc;
    if (sc == DisturbScenario::None)
        return;
    // The attack must reach DRAM: caches far smaller than the hammer
    // working set, footprint wide enough to cover the aggressor bank's
    // first rows and their victims (64 pages = rows 0..7 of bank 0).
    cfg.engine.l1Bytes = 1024;
    cfg.engine.llcBytes = 2048;
    cfg.footprintPages = 64;
    // Measure the disturbance story in isolation: no ambient classical
    // arrivals, so every corruption observed comes from victim rows.
    for (auto &r : cfg.lifecycle.rates)
        r.fit = 0.0;
    cfg.engine.dram.disturbEnabled = true;
    // Scaled-down HCfirst so attacks land inside one refresh interval
    // (activation counters reset every tREFI) within CI-sized trials;
    // the preventive threshold sits below the weakest per-row HCfirst.
    // tREFI is stretched in the same spirit: real HCfirst is defined
    // over a 64 ms refresh window holding tens of thousands of ACTs,
    // so the scaled window must hold many activations too.
    cfg.engine.dram.tREFI *= 8;
    cfg.engine.dram.disturbThreshold = 24;
    cfg.engine.dram.disturbThresholdSpread = 8;
    cfg.engine.dram.preventiveRefreshThreshold = 12;
    cfg.engine.dram.tFAW = nsToTicks(30.0);
    cfg.dve.disturbRetireAfter = 3;
    // Refresh pressure: halving tREFI doubles both the ambient blackout
    // load and the counter-reset rate, so crossings still happen but
    // cost the attacker twice the activations.
    if (sc == DisturbScenario::HammerUnderRefreshPressure)
        cfg.engine.dram.tREFI /= 2;
}

std::vector<CampaignScheme>
disturbSchemes()
{
    return {CampaignScheme::BaselineNone, CampaignScheme::BaselineSecDed,
            CampaignScheme::BaselineDetect,
            CampaignScheme::BaselinePreventive, CampaignScheme::DveAllow,
            CampaignScheme::DveDeny};
}

void
applyPoolPreset(CampaignConfig &cfg)
{
    // Three nodes: a single node loss leaves two heal-back targets, so
    // the retarget path (not just demotion) is exercised every trial.
    cfg.poolNodes = 3;
}

std::vector<CampaignScheme>
poolSchemes()
{
    return {CampaignScheme::LocalChipkill, CampaignScheme::BaselineDetect,
            CampaignScheme::DveDeny, CampaignScheme::TwoTier};
}

void
applyPolicyPreset(CampaignConfig &cfg, PolicyScenario sc)
{
    cfg.policyScenario = sc;
    if (sc == PolicyScenario::None)
        return;
    // RMT path: nothing is replicated until the policy promotes it, so
    // every replica in the trial was earned by observed hotness.
    cfg.dve.replicateAll = false;
    cfg.dve.policy.enabled = true;
    // Short epochs relative to the trial: each workload phase spans
    // several epochs, so the policy visibly chases the hot set rather
    // than reacting once.
    cfg.dve.policy.epochOps = 200;
    cfg.dve.policy.promoteThreshold = 3;
    cfg.dve.policy.maxPromotionsPerEpoch = 4;
    cfg.dve.policy.maxDemotionsPerEpoch = 8;
    // Budget half the footprint (or a bit more for the squeeze start),
    // so the hot set fits but the whole footprint never does --
    // capacity pressure forces real demotion decisions.
    cfg.footprintPages = 16;
    cfg.dve.policy.globalBudget =
        sc == PolicyScenario::BudgetSqueeze ? 12 : 8;
    // Long enough for several phase transitions x several epochs each.
    cfg.opsPerTrial = 4000;
}

std::vector<CampaignScheme>
policySchemes()
{
    return {CampaignScheme::BaselineDetect, CampaignScheme::DveAllow,
            CampaignScheme::DveDeny};
}

void
applyMetadataPreset(CampaignConfig &cfg, MetadataScenario sc)
{
    cfg.metadataScenario = sc;
    if (sc == MetadataScenario::None)
        return;
    // The storm isolates the control-plane story: every DUE or SDC in
    // the report traces back to a corrupted directory/RMT entry, not to
    // an ambient data fault the codec happened to miss.
    if (sc == MetadataScenario::MetadataStorm) {
        for (auto &r : cfg.lifecycle.rates)
            r.fit = 0.0;
    }
    // Directory entries don't flap: a corrupted word is either cured by
    // the next rewrite (transient) or wrong until rebuilt from the other
    // side (permanent). Half-and-half exercises both scrub outcomes --
    // repair-in-place and cross-rebuild -- plus the both-sides-lost DUE
    // tail. The storm doubles the pressure so several pages are lost at
    // once and rebuilds queue up behind each other.
    const double fit = sc == MetadataScenario::MetadataStorm ? 30.0 : 12.0;
    cfg.lifecycle.rates[unsigned(FaultScope::Metadata)] = {fit, 0.5, 0.0};
}

std::vector<CampaignScheme>
metadataSchemes()
{
    // baseline-detect has no replication metadata to corrupt: it shows
    // what the same fault process costs a scheme without a control
    // plane, anchoring the meta-none SDCs to Dvé's added structures.
    return {CampaignScheme::BaselineDetect, CampaignScheme::DveMetaNone,
            CampaignScheme::DveMetaParity, CampaignScheme::DveMetaEcc};
}

CampaignConfig
CampaignConfig::quickDefaults()
{
    CampaignConfig c;
    c.engine.dram = DramConfig::ddr4Replicated();
    // Caches much smaller than the footprint so the trial keeps going
    // back to DRAM -- faults must be observable to be counted.
    c.engine.l1Bytes = 4 * 1024;
    c.engine.llcBytes = 64 * 1024;
    c.engine.validateValues = false; // SDCs are counted, not fatal
    c.footprintPages = 32;
    c.lifecycle = LifecycleConfig::fieldDefaults();
    // ~3 arrivals over a ~100 us trial at the fieldDefaults() FIT mix.
    c.lifecycle.acceleration = 2.5e15;
    c.lifecycle.meanActive = 30 * ticksPerUs;
    c.lifecycle.meanInactive = 20 * ticksPerUs;
    c.dve.repairRetryBackoff = 10 * ticksPerUs;
    return c;
}

void
TrialStats::accumulate(const TrialStats &t)
{
    reads += t.reads;
    writes += t.writes;
    clean += t.clean;
    corrected += t.corrected;
    due += t.due;
    sdc += t.sdc;
    faultArrivals += t.faultArrivals;
    transientFaults += t.transientFaults;
    intermittentFaults += t.intermittentFaults;
    permanentFaults += t.permanentFaults;
    replicaRecoveries += t.replicaRecoveries;
    repairedCopies += t.repairedCopies;
    reReplications += t.reReplications;
    retiredPages += t.retiredPages;
    repairRetries += t.repairRetries;
    degradedEvents += t.degradedEvents;
    degradedLinesEnd += t.degradedLinesEnd;
    scrubCorrected += t.scrubCorrected;
    degradedResidencyTicks += t.degradedResidencyTicks;
    unavailableRequests += t.unavailableRequests;
    linkRetries += t.linkRetries;
    fabricDemotions += t.fabricDemotions;
    repairDeferrals += t.repairDeferrals;
    droppedMessages += t.droppedMessages;
    failedSends += t.failedSends;
    disturbCrossings += t.disturbCrossings;
    preventiveRefreshes += t.preventiveRefreshes;
    preventiveStallTicks += t.preventiveStallTicks;
    disturbFaults += t.disturbFaults;
    disturbRetirements += t.disturbRetirements;
    metaDetected += t.metaDetected;
    metaCorrected += t.metaCorrected;
    metaLies += t.metaLies;
    metaRebuilds += t.metaRebuilds;
    metaDemotions += t.metaDemotions;
    metaForwards += t.metaForwards;
    timedOut += t.timedOut;
    poolReplicaReads += t.poolReplicaReads;
    poolReplicaWrites += t.poolReplicaWrites;
    poolRetargets += t.poolRetargets;
    policyEpochs += t.policyEpochs;
    policyPromotions += t.policyPromotions;
    policyDemotions += t.policyDemotions;
    policyDemotionsDeferred += t.policyDemotionsDeferred;
    policyDemotionWritebacks += t.policyDemotionWritebacks;
    policyPromotionLag.merge(t.policyPromotionLag);
    policyDemotionWbWait.merge(t.policyDemotionWbWait);
    // engineSeed/faultSeed/workloadSeed/faultLogDigest/traceJson
    // identify one trial; they are deliberately not summed into totals.
    recoveryLatencies.insert(recoveryLatencies.end(),
                             t.recoveryLatencies.begin(),
                             t.recoveryLatencies.end());
    reqLatency.merge(t.reqLatency);
}

LatencySummary
summarizeLatencies(std::vector<Tick> v)
{
    LatencySummary s;
    if (v.empty())
        return s;
    std::sort(v.begin(), v.end());
    s.count = v.size();
    s.p50 = v[(v.size() - 1) / 2];
    s.p95 = v[(v.size() - 1) * 95 / 100];
    s.max = v.back();
    return s;
}

namespace
{

bool
isMetaScheme(CampaignScheme s)
{
    return s == CampaignScheme::DveMetaNone
           || s == CampaignScheme::DveMetaParity
           || s == CampaignScheme::DveMetaEcc;
}

MetadataProtection
metaTierOf(CampaignScheme s)
{
    switch (s) {
      case CampaignScheme::DveMetaNone: return MetadataProtection::None;
      case CampaignScheme::DveMetaParity:
        return MetadataProtection::Parity;
      default: return MetadataProtection::Ecc;
    }
}

bool
isDve(CampaignScheme s)
{
    return s == CampaignScheme::DveAllow || s == CampaignScheme::DveDeny
           || s == CampaignScheme::TwoTier || isMetaScheme(s);
}

Scheme
codecFor(CampaignScheme s)
{
    switch (s) {
      case CampaignScheme::BaselineNone: return Scheme::None;
      case CampaignScheme::BaselineSecDed: return Scheme::SecDed72_64;
      case CampaignScheme::BaselinePreventive: return Scheme::SecDed72_64;
      case CampaignScheme::BaselineDetect: return Scheme::DsdDetect;
      // Dvé pairs detection-only codes with cross-copy recovery; TSD is
      // the paper's Dvé+TSD configuration (detects 3-chip failures).
      // The metadata tiers share it: only the control-plane protection
      // differs between them, never the data codec.
      case CampaignScheme::DveAllow:
      case CampaignScheme::DveDeny:
      case CampaignScheme::DveMetaNone:
      case CampaignScheme::DveMetaParity:
      case CampaignScheme::DveMetaEcc: return Scheme::TsdDetect;
      // The pool comparison pair: strong self-sufficient local ECC vs
      // the two-tier split (weak local detect, far replica recovers).
      case CampaignScheme::LocalChipkill: return Scheme::ChipkillSscDsd;
      case CampaignScheme::TwoTier: return Scheme::DsdDetect;
    }
    return Scheme::ChipkillSscDsd;
}

/**
 * Layer the fabric-fault scenario onto the lifecycle rates. FITs are
 * chosen so that at CampaignConfig::quickDefaults() acceleration each
 * trial sees roughly one to a few fabric episodes alongside the DRAM
 * mix. LinkFlap/LossyLink are pure-intermittent processes (episodes
 * end: the link heals); SocketOffline is pure-permanent (a socket that
 * dies stays dead for the rest of the trial).
 */
void
applyScenario(LifecycleConfig &lc, FabricScenario sc)
{
    switch (sc) {
      case FabricScenario::None:
        break;
      case FabricScenario::LinkFlap:
        lc.rates[unsigned(FaultScope::LinkDown)] = {12.0, 0.0, 1.0};
        break;
      case FabricScenario::LossyLink:
        lc.rates[unsigned(FaultScope::LinkLossy)] = {12.0, 0.0, 1.0};
        break;
      case FabricScenario::SocketOffline:
        lc.rates[unsigned(FaultScope::SocketOffline)] = {6.0, 0.0, 0.0};
        break;
      case FabricScenario::PoolOffline:
        // Pure-permanent: a lost pool node stays lost; the two-tier
        // scheme must heal back onto the survivors.
        lc.rates[unsigned(FaultScope::PoolNodeOffline)] = {6.0, 0.0, 0.0};
        break;
      case FabricScenario::Partition:
        // Pure-intermittent: partitions heal, so demotion-then-heal-back
        // cycles are exercised alongside honest DUE accounting.
        lc.rates[unsigned(FaultScope::FabricPartition)] = {12.0, 0.0, 1.0};
        break;
    }
}

/** FNV-1a over the lifecycle event log: one value identifies the whole
 *  fault history of a trial, so a replay can be checked cheaply. */
std::uint64_t
digestFaultLog(const std::vector<FaultLifecycleEngine::Event> &log)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (const auto &e : log) {
        mix(e.at);
        mix(static_cast<std::uint64_t>(e.type));
        mix(static_cast<std::uint64_t>(e.kind));
        mix(static_cast<std::uint64_t>(e.scope));
        mix(e.faultId);
    }
    return h;
}

} // namespace

TrialStats
CampaignRunner::runTrial(CampaignScheme s, unsigned trial) const
{
    EngineConfig ecfg = cfg_.engine;
    ecfg.scheme = codecFor(s);
    ecfg.validateValues = false;
    ecfg.seed = cfg_.seed * 1000003 + trial;

    const bool hammer = cfg_.disturb != DisturbScenario::None;
    if (hammer) {
        // The disturbance seed (weak cells, per-row HCfirst) depends on
        // (campaign seed, trial) only -- never on the scheme -- so every
        // scheme faces rows of identical vulnerability.
        ecfg.dram.disturbEnabled = true;
        ecfg.dram.disturbSeed = cfg_.seed * 131071 + trial;
        ecfg.dram.preventiveRefreshEnabled =
            s == CampaignScheme::BaselinePreventive;
    }

    std::unique_ptr<CoherenceEngine> owner;
    DveEngine *dve = nullptr;
    if (isDve(s)) {
        DveConfig d = cfg_.dve;
        d.protocol = s == CampaignScheme::DveAllow ? DveProtocol::Allow
                                                   : DveProtocol::Deny;
        // Metadata tiers: same deny engine, same data codec; the only
        // degree of freedom is how the control-plane words are encoded.
        if (isMetaScheme(s)) {
            d.metadataFaults = true;
            d.metaProtection = metaTierOf(s);
        }
        // Only the two-tier scheme puts its replicas on the pool;
        // classic Dvé keeps them in the replica socket's DRAM even in
        // pool campaigns (that contrast is the Table-I comparison).
        if (s == CampaignScheme::TwoTier)
            d.poolNodes = cfg_.poolNodes;
        auto e = std::make_unique<DveEngine>(ecfg, d);
        dve = e.get();
        owner = std::move(e);
    } else {
        owner = std::make_unique<CoherenceEngine>(ecfg);
    }
    CoherenceEngine &eng = *owner;

    // The fault process is a function of (campaign seed, trial) only:
    // every scheme faces the same arrival times, scopes and locations.
    LifecycleConfig lc = cfg_.lifecycle;
    lc.sockets = ecfg.sockets;
    lc.dram = ecfg.dram;
    lc.chips = LineCodec(ecfg.scheme).chips();
    lc.footprintLines =
        Addr(cfg_.footprintPages) * (pageBytes / lineBytes);
    lc.seed = cfg_.seed * 7919 + trial;
    // Scheme-independent: pool-scope arrivals fire for every scheme;
    // schemes without a pool tier simply have nothing there to lose.
    lc.poolNodes = cfg_.poolNodes;
    applyScenario(lc, cfg_.scenario);
    FaultLifecycleEngine flc(lc, eng.faultRegistry());
    // When the campaign config enabled tracing, fault arrivals/heals
    // land on the same timeline as the engine's request records.
    if (eng.tracer().enabled())
        flc.setTracer(&eng.tracer());

    // Workload stream, likewise scheme-independent.
    Rng wl(cfg_.seed * 31 + trial + 1);
    const unsigned linesPerPage = pageBytes / lineBytes;
    const unsigned actors = ecfg.sockets * ecfg.coresPerSocket;

    // Hammer access list: aggressor rows of one bank, column-major and
    // row-interleaved so consecutive hammer accesses conflict in the
    // bank and each one costs a real activate.
    std::vector<Addr> hammerLines;
    std::vector<Addr> victimLines;
    std::uint64_t hammerIdx = 0;
    std::uint64_t victimIdx = 0;
    constexpr double hammerFraction = 0.7;
    // Share of hammer picks that probe the victim rows instead: real
    // attackers read the victims to harvest flips, and the probes are
    // what surfaces the corruption as SDC/DUE in the outcome columns.
    constexpr double victimProbeFraction = 0.2;
    if (hammer) {
        const std::vector<std::uint64_t> aggressors =
            cfg_.disturb == DisturbScenario::HammerSingle
                ? std::vector<std::uint64_t>{2, 5}
                // More aggressors than counter-table entries: the
                // spillover floor carries the estimate.
                : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6};
        std::vector<std::uint64_t> victims;
        for (const std::uint64_t row : aggressors) {
            for (const std::uint64_t v : {row - 1, row + 1}) {
                // row 0's lower neighbor wraps and fails the bound.
                if (v >= ecfg.dram.rowsPerBank())
                    continue;
                if (std::find(victims.begin(), victims.end(), v)
                    == victims.end()) {
                    victims.push_back(v);
                }
            }
        }
        const AddressMap amap(ecfg.dram);
        for (unsigned col = 0; col < amap.linesPerRow(); ++col) {
            DramCoord c;
            c.channel = 0;
            c.rank = 0;
            c.bank = 0;
            c.column = col;
            for (const std::uint64_t row : aggressors) {
                c.row = row;
                hammerLines.push_back(amap.encode(c));
            }
            for (const std::uint64_t row : victims) {
                c.row = row;
                victimLines.push_back(amap.encode(c));
            }
        }
    }

    // Policy scenarios phase the workload's hot set by op index (never
    // by scheme or engine state), so every scheme -- baseline included
    // -- faces the identical access stream and RNG draw sequence.
    const bool policyRun = cfg_.policyScenario != PolicyScenario::None;
    const unsigned hotPages = std::max(1u, cfg_.footprintPages / 4);
    constexpr double hotFraction = 0.8;

    TrialStats t;
    Tick clock = 0;
    Tick next_scrub = cfg_.scrubInterval;
    Tick next_maint = cfg_.maintenanceInterval;

    // Wall-clock watchdog: when armed, a runaway trial stops issuing
    // ops (and skips the drain) instead of hanging the campaign. The
    // clock is never read when the watchdog is off, so default-config
    // reports stay byte-identical and fully deterministic.
    const bool watchdog = cfg_.trialTimeoutMs > 0;
    const auto started = watchdog ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point();
    const auto expired = [&]() {
        return std::chrono::steady_clock::now() - started
               >= std::chrono::milliseconds(cfg_.trialTimeoutMs);
    };

    for (std::uint64_t op = 0; op < cfg_.opsPerTrial; ++op) {
        if (watchdog && op != 0 && (op & 255u) == 0 && expired()) {
            t.timedOut = 1;
            break;
        }
        flc.advanceTo(clock);

        if (policyRun && cfg_.policyScenario == PolicyScenario::BudgetSqueeze
            && op == cfg_.opsPerTrial / 2 && dve && dve->policyActive()) {
            // Mid-run capacity crunch: the operator reclaims most of
            // the replication budget; the policy must shed pages (real
            // writeback storms) and keep honesty intact throughout.
            dve->setPolicyGlobalBudget(2);
        }

        const unsigned actor = static_cast<unsigned>(wl.next(actors));
        Addr addr;
        bool is_write;
        if (hammer && wl.chance(hammerFraction)) {
            // Hammer reads cycle the aggressor rows; interleaved victim
            // probes harvest the flips the activations induced.
            addr = wl.chance(victimProbeFraction)
                       ? victimLines[victimIdx++ % victimLines.size()]
                       : hammerLines[hammerIdx++ % hammerLines.size()];
            is_write = false;
        } else if (policyRun) {
            // Phased hot set: most accesses hit a quarter-footprint hot
            // window whose base shifts with the scenario's schedule.
            Addr hotBase = 0;
            switch (cfg_.policyScenario) {
              case PolicyScenario::Diurnal:
                // Alternate halves every quarter-trial (4 phases).
                hotBase = ((op / std::max<std::uint64_t>(
                                1, cfg_.opsPerTrial / 4)) % 2)
                              ? cfg_.footprintPages / 2
                              : 0;
                break;
              case PolicyScenario::FlashCrowd:
                // One abrupt jump onto fresh pages at half-run.
                hotBase = op >= cfg_.opsPerTrial / 2
                              ? cfg_.footprintPages / 2
                              : 0;
                break;
              case PolicyScenario::BudgetSqueeze:
              case PolicyScenario::None:
                break; // stable hot set; the squeeze is the event
            }
            const Addr page = wl.chance(hotFraction)
                                  ? hotBase + wl.next(hotPages)
                                  : wl.next(cfg_.footprintPages);
            addr = page * pageBytes + wl.next(linesPerPage) * lineBytes;
            is_write = wl.chance(cfg_.writeFraction);
        } else {
            const Addr page = wl.next(cfg_.footprintPages);
            addr = page * pageBytes + wl.next(linesPerPage) * lineBytes;
            is_write = wl.chance(cfg_.writeFraction);
        }
        const std::uint64_t value = wl.engine()();

        const auto r =
            eng.access(actor / ecfg.coresPerSocket,
                       actor % ecfg.coresPerSocket, addr, is_write,
                       value, clock);
        clock = r.done;
        if (is_write)
            ++t.writes;
        else
            ++t.reads;
        switch (r.outcome) {
          case ReadOutcome::Clean: ++t.clean; break;
          case ReadOutcome::Corrected: ++t.corrected; break;
          case ReadOutcome::Due: ++t.due; break;
          case ReadOutcome::Sdc: ++t.sdc; break;
        }

        if (dve && clock >= next_scrub) {
            const auto rep = dve->patrolScrub(clock);
            t.scrubCorrected += rep.correctedErrors;
            clock = rep.finishedAt;
            next_scrub = clock + cfg_.scrubInterval;
        }
        if (dve && clock >= next_maint) {
            clock = dve->runMaintenance(clock).finishedAt;
            next_maint = clock + cfg_.maintenanceInterval;
        }
    }

    // Drain: stop new arrivals (the workload is over), then give already-
    // present faults time to play out -- intermittents flap off within
    // their bounded episode budgets and repair backoffs expire -- so the
    // self-healing pipeline can return every healable line to dual copy.
    if (dve) {
        flc.stopArrivals();
        for (unsigned round = 0; round < cfg_.drainRounds; ++round) {
            if (watchdog && (t.timedOut || expired())) {
                t.timedOut = 1;
                break;
            }
            if (dve->degradedLines() == 0 && dve->pendingRepairs() == 0)
                break;
            clock += cfg_.maintenanceInterval;
            flc.advanceTo(clock);
            const auto rep = dve->patrolScrub(clock);
            t.scrubCorrected += rep.correctedErrors;
            clock = dve->runMaintenance(rep.finishedAt).finishedAt;
        }
    }

    t.faultArrivals = flc.stats().arrivals;
    t.transientFaults =
        flc.stats().byKind[unsigned(FaultKind::Transient)];
    t.intermittentFaults =
        flc.stats().byKind[unsigned(FaultKind::Intermittent)];
    t.permanentFaults =
        flc.stats().byKind[unsigned(FaultKind::Permanent)];
    t.droppedMessages = eng.interconnect().droppedMessages();
    t.failedSends = eng.interconnect().failedSends();
    t.engineSeed = ecfg.seed;
    t.faultSeed = lc.seed;
    t.workloadSeed = cfg_.seed * 31 + trial + 1;
    t.faultLogDigest = digestFaultLog(flc.log());
    if (dve) {
        t.unavailableRequests = dve->unavailableRequests();
        t.linkRetries = dve->linkRetries();
        t.fabricDemotions = dve->fabricDemotions();
        t.repairDeferrals = dve->repairDeferrals();
        t.replicaRecoveries = dve->replicaRecoveries();
        t.repairedCopies = dve->repairedCopies();
        t.reReplications = dve->reReplications();
        t.retiredPages = dve->retiredPages();
        t.repairRetries = dve->repairRetries();
        t.degradedEvents = dve->dveStats().has("degraded_events")
                               ? static_cast<std::uint64_t>(
                                     dve->dveStats().get(
                                         "degraded_events"))
                               : 0;
        t.degradedLinesEnd = dve->degradedLines();
        t.degradedResidencyTicks = dve->degradedResidency(clock);
        t.recoveryLatencies = dve->recoveryLatencies();
        if (dve->poolActive()) {
            t.poolReplicaReads = dve->poolReplicaReads();
            t.poolReplicaWrites = dve->poolReplicaWrites();
            t.poolRetargets = dve->poolRetargets();
        }
        if (dve->metadataArmed()) {
            t.metaDetected = dve->metadataDetected();
            t.metaCorrected = dve->metadataCorrected();
            t.metaLies = dve->metadataLies();
            t.metaRebuilds = dve->metadataRebuilds();
            t.metaDemotions = dve->metadataDemotions();
            t.metaForwards = dve->metadataForwards();
        }
        if (dve->policyActive()) {
            t.policyEpochs = dve->policyEpochs();
            t.policyPromotions = dve->policyPromotions();
            t.policyDemotions = dve->policyDemotions();
            t.policyDemotionsDeferred = dve->policyDemotionsDeferred();
            t.policyDemotionWritebacks = dve->policyDemotionWritebacks();
            t.policyPromotionLag = dve->policyPromotionLag();
            t.policyDemotionWbWait = dve->policyDemotionWbWait();
        }
    }
    if (hammer) {
        for (unsigned sock = 0; sock < ecfg.sockets; ++sock) {
            auto &mc = eng.memory(sock);
            for (unsigned c = 0; c < mc.copies(); ++c) {
                t.disturbCrossings += mc.dram(c).disturbCrossings();
                t.preventiveRefreshes +=
                    mc.dram(c).preventiveRefreshes();
                t.preventiveStallTicks +=
                    mc.dram(c).preventiveStallTicks();
            }
            t.disturbFaults += mc.disturbFaultsInjected();
        }
        if (dve)
            t.disturbRetirements = dve->disturbRetirements();
    }
    t.reqLatency = eng.requestLatency();
    if (eng.tracer().enabled()) {
        std::ostringstream os;
        eng.tracer().exportChromeTrace(os);
        t.traceJson = os.str();
    }
    return t;
}

unsigned
CampaignRunner::effectiveJobs() const
{
    return cfg_.jobs ? cfg_.jobs : jobsFromEnv();
}

SchemeResult
CampaignRunner::assemble(CampaignScheme s,
                         std::vector<TrialStats> &&trials) const
{
    SchemeResult r;
    r.scheme = s;
    r.trials = std::move(trials);
    for (const auto &t : r.trials)
        r.totals.accumulate(t);
    r.recovery = summarizeLatencies(r.totals.recoveryLatencies);
    r.reqLatencyDigest = digestOf(r.totals.reqLatency);
    return r;
}

SchemeResult
CampaignRunner::runScheme(CampaignScheme s) const
{
    auto trials = parallelMap(
        cfg_.trials,
        [&](std::size_t i) {
            return runTrial(s, static_cast<unsigned>(i));
        },
        effectiveJobs());
    return assemble(s, std::move(trials));
}

CampaignReport
CampaignRunner::run(const std::vector<CampaignScheme> &schemes) const
{
    CampaignReport rep;
    rep.cfg = cfg_;
    rep.schemes.reserve(schemes.size());
    if (cfg_.trials == 0 || schemes.empty()) {
        for (const auto s : schemes)
            rep.schemes.push_back(assemble(s, {}));
        return rep;
    }

    // Flatten the scheme x trial matrix into one task list so the pool
    // stays saturated across scheme boundaries (the last trials of one
    // scheme overlap the first of the next). Task ids enumerate trials
    // within a scheme, then schemes -- the serial nesting order -- and
    // the ordered merge below reproduces the serial report exactly.
    const std::size_t per = cfg_.trials;
    auto flat = parallelMap(
        schemes.size() * per,
        [&](std::size_t task) {
            return runTrial(schemes[task / per],
                            static_cast<unsigned>(task % per));
        },
        effectiveJobs());

    for (std::size_t si = 0; si < schemes.size(); ++si) {
        auto first = std::make_move_iterator(flat.begin() + si * per);
        rep.schemes.push_back(assemble(
            schemes[si],
            std::vector<TrialStats>(first, first + per)));
    }
    return rep;
}

namespace
{

/** Deterministic double formatting (residency ticks are integral). */
std::string
fmtTicks(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
}

void
writeTotals(const TrialStats &t, bool disturb, bool pool, bool policy,
            bool metadata, bool timeout, const char *indent,
            std::ostream &os)
{
    os << indent << "\"reads\": " << t.reads << ",\n"
       << indent << "\"writes\": " << t.writes << ",\n"
       << indent << "\"clean\": " << t.clean << ",\n"
       << indent << "\"corrected\": " << t.corrected << ",\n"
       << indent << "\"due\": " << t.due << ",\n"
       << indent << "\"sdc\": " << t.sdc << ",\n"
       << indent << "\"fault_arrivals\": " << t.faultArrivals << ",\n"
       << indent << "\"transient_faults\": " << t.transientFaults << ",\n"
       << indent << "\"intermittent_faults\": " << t.intermittentFaults
       << ",\n"
       << indent << "\"permanent_faults\": " << t.permanentFaults << ",\n"
       << indent << "\"replica_recoveries\": " << t.replicaRecoveries
       << ",\n"
       << indent << "\"repaired_copies\": " << t.repairedCopies << ",\n"
       << indent << "\"re_replications\": " << t.reReplications << ",\n"
       << indent << "\"retired_pages\": " << t.retiredPages << ",\n"
       << indent << "\"repair_retries\": " << t.repairRetries << ",\n"
       << indent << "\"degraded_events\": " << t.degradedEvents << ",\n"
       << indent << "\"scrub_corrected\": " << t.scrubCorrected << ",\n"
       << indent << "\"degraded_lines_end\": " << t.degradedLinesEnd
       << ",\n"
       << indent << "\"degraded_residency_ticks\": "
       << fmtTicks(t.degradedResidencyTicks) << ",\n"
       << indent << "\"mean_time_degraded_ticks\": "
       << fmtTicks(t.degradedEvents
                       ? t.degradedResidencyTicks
                             / static_cast<double>(t.degradedEvents)
                       : 0.0)
       << ",\n"
       << indent << "\"unavailable_requests\": " << t.unavailableRequests
       << ",\n"
       << indent << "\"link_retries\": " << t.linkRetries << ",\n"
       << indent << "\"fabric_demotions\": " << t.fabricDemotions << ",\n"
       << indent << "\"repair_deferrals\": " << t.repairDeferrals << ",\n"
       << indent << "\"dropped_messages\": " << t.droppedMessages << ",\n"
       << indent << "\"failed_sends\": " << t.failedSends;
    if (disturb) {
        // Emitted only for hammer campaigns so disturbance-free reports
        // stay byte-identical to earlier versions.
        os << ",\n"
           << indent << "\"disturb_crossings\": " << t.disturbCrossings
           << ",\n"
           << indent << "\"disturb_faults\": " << t.disturbFaults << ",\n"
           << indent << "\"preventive_refreshes\": "
           << t.preventiveRefreshes << ",\n"
           << indent << "\"preventive_refresh_stall_ticks\": "
           << t.preventiveStallTicks << ",\n"
           << indent << "\"disturb_retirements\": "
           << t.disturbRetirements;
    }
    if (pool) {
        // Emitted only for pool campaigns so pool-free reports stay
        // byte-identical to earlier versions.
        os << ",\n"
           << indent << "\"pool_replica_reads\": " << t.poolReplicaReads
           << ",\n"
           << indent << "\"pool_replica_writes\": " << t.poolReplicaWrites
           << ",\n"
           << indent << "\"pool_retargets\": " << t.poolRetargets;
    }
    if (policy) {
        // Emitted only for policy campaigns so policy-free reports stay
        // byte-identical to earlier versions.
        os << ",\n"
           << indent << "\"policy_epochs\": " << t.policyEpochs << ",\n"
           << indent << "\"policy_promotions\": " << t.policyPromotions
           << ",\n"
           << indent << "\"policy_demotions\": " << t.policyDemotions
           << ",\n"
           << indent << "\"policy_demotions_deferred\": "
           << t.policyDemotionsDeferred << ",\n"
           << indent << "\"policy_demotion_writebacks\": "
           << t.policyDemotionWritebacks;
    }
    if (metadata) {
        // Emitted only for metadata campaigns so metadata-free reports
        // stay byte-identical to earlier versions.
        os << ",\n"
           << indent << "\"meta_detected\": " << t.metaDetected << ",\n"
           << indent << "\"meta_corrected\": " << t.metaCorrected << ",\n"
           << indent << "\"meta_lies\": " << t.metaLies << ",\n"
           << indent << "\"meta_rebuilds\": " << t.metaRebuilds << ",\n"
           << indent << "\"meta_demotions\": " << t.metaDemotions << ",\n"
           << indent << "\"meta_forwards\": " << t.metaForwards;
    }
    if (timeout) {
        // Emitted only when the watchdog is armed; counts timed-out
        // trials in totals.
        os << ",\n"
           << indent << "\"timed_out\": " << t.timedOut;
    }
    os << "\n";
}

/** Fixed-width hex so digests line up and never parse as JSON floats. */
std::string
fmtDigest(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

} // namespace

void
writeJsonReport(const CampaignReport &report, std::ostream &os)
{
    const auto &c = report.cfg;
    os << "{\n"
       << "  \"campaign\": {\n"
       << "    \"trials\": " << c.trials << ",\n"
       << "    \"seed\": " << c.seed << ",\n"
       << "    \"scenario\": \"" << fabricScenarioName(c.scenario)
       << "\",\n";
    if (c.disturb != DisturbScenario::None) {
        os << "    \"disturb_scenario\": \""
           << disturbScenarioName(c.disturb) << "\",\n";
    }
    if (c.poolNodes > 0)
        os << "    \"pool_nodes\": " << c.poolNodes << ",\n";
    if (c.policyScenario != PolicyScenario::None) {
        os << "    \"policy_scenario\": \""
           << policyScenarioName(c.policyScenario) << "\",\n";
    }
    if (c.metadataScenario != MetadataScenario::None) {
        os << "    \"metadata_scenario\": \""
           << metadataScenarioName(c.metadataScenario) << "\",\n";
    }
    if (c.trialTimeoutMs > 0)
        os << "    \"trial_timeout_ms\": " << c.trialTimeoutMs << ",\n";
    os << "    \"ops_per_trial\": " << c.opsPerTrial << ",\n"
       << "    \"footprint_pages\": " << c.footprintPages << ",\n"
       << "    \"scrub_interval_ticks\": " << c.scrubInterval << ",\n"
       << "    \"maintenance_interval_ticks\": " << c.maintenanceInterval
       << ",\n"
       << "    \"acceleration\": "
       << fmtTicks(c.lifecycle.acceleration) << "\n"
       << "  },\n"
       << "  \"schemes\": [\n";
    for (std::size_t i = 0; i < report.schemes.size(); ++i) {
        const auto &sr = report.schemes[i];
        os << "    {\n"
           << "      \"scheme\": \"" << campaignSchemeName(sr.scheme)
           << "\",\n"
           << "      \"totals\": {\n";
        writeTotals(sr.totals, c.disturb != DisturbScenario::None,
                    c.poolNodes > 0,
                    c.policyScenario != PolicyScenario::None,
                    c.metadataScenario != MetadataScenario::None,
                    c.trialTimeoutMs > 0, "        ", os);
        os << "      },\n"
           << "      \"recovery_latency\": {\n"
           << "        \"count\": " << sr.recovery.count << ",\n"
           << "        \"p50_ticks\": " << sr.recovery.p50 << ",\n"
           << "        \"p95_ticks\": " << sr.recovery.p95 << ",\n"
           << "        \"max_ticks\": " << sr.recovery.max << "\n"
           << "      },\n"
           << "      \"request_latency\": {\n"
           << "        \"count\": " << sr.reqLatencyDigest.count << ",\n"
           << "        \"p50_ticks\": " << sr.reqLatencyDigest.p50
           << ",\n"
           << "        \"p95_ticks\": " << sr.reqLatencyDigest.p95
           << ",\n"
           << "        \"p99_ticks\": " << sr.reqLatencyDigest.p99
           << ",\n"
           << "        \"max_ticks\": " << sr.reqLatencyDigest.max << "\n"
           << "      },\n"
           << "      \"trials\": [\n";
        for (std::size_t j = 0; j < sr.trials.size(); ++j) {
            const auto &t = sr.trials[j];
            const LatencyDigest lat = digestOf(t.reqLatency);
            os << "        {\"due\": " << t.due << ", \"sdc\": " << t.sdc
               << ", \"corrected\": " << t.corrected
               << ", \"faults\": " << t.faultArrivals
               << ", \"re_replications\": " << t.reReplications
               << ", \"degraded_end\": " << t.degradedLinesEnd
               << ", \"unavailable\": " << t.unavailableRequests
               << ",\n         \"req_p50\": " << lat.p50
               << ", \"req_p95\": " << lat.p95
               << ", \"req_p99\": " << lat.p99;
            if (c.policyScenario != PolicyScenario::None) {
                os << ",\n         \"promotions\": " << t.policyPromotions
                   << ", \"demotions\": " << t.policyDemotions
                   << ", \"demotions_deferred\": "
                   << t.policyDemotionsDeferred
                   << ", \"demotion_writebacks\": "
                   << t.policyDemotionWritebacks;
            }
            if (c.metadataScenario != MetadataScenario::None) {
                os << ",\n         \"meta_detected\": " << t.metaDetected
                   << ", \"meta_lies\": " << t.metaLies
                   << ", \"meta_rebuilds\": " << t.metaRebuilds
                   << ", \"meta_demotions\": " << t.metaDemotions;
            }
            if (c.trialTimeoutMs > 0)
                os << ",\n         \"timed_out\": " << t.timedOut;
            os << ",\n         \"engine_seed\": " << t.engineSeed
               << ", \"fault_seed\": " << t.faultSeed
               << ", \"workload_seed\": " << t.workloadSeed
               << ", \"fault_log_digest\": \""
               << fmtDigest(t.faultLogDigest) << "\"}"
               << (j + 1 < sr.trials.size() ? "," : "") << "\n";
        }
        os << "      ]\n"
           << "    }" << (i + 1 < report.schemes.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n"
       << "}\n";
}

} // namespace dve
