/**
 * @file
 * Trace tooling: generate a workload's synchronization-aware trace,
 * save it in the binary format, reload it, and print a summary -- the
 * Prism/SynchroTrace-style workflow of the paper's methodology.
 *
 *   $ ./build/examples/trace_tool gen  <workload> <file> [threads] [scale]
 *   $ ./build/examples/trace_tool info <file>
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/logging.hh"
#include "trace/workloads.hh"

using namespace dve;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool gen <workload> <file> [threads] "
                 "[scale]\n"
                 "       trace_tool info <file>\n");
    return 2;
}

void
summarize(const ThreadTraces &traces)
{
    std::array<std::uint64_t, 6> counts{};
    std::uint64_t compute_cycles = 0;
    for (const auto &thread : traces) {
        for (const auto &op : thread) {
            ++counts[static_cast<unsigned>(op.type)];
            if (op.type == OpType::Compute)
                compute_cycles += op.arg;
        }
    }
    std::printf("threads          : %zu\n", traces.size());
    std::printf("events           : %llu\n",
                static_cast<unsigned long long>(totalOps(traces)));
    for (unsigned t = 0; t < counts.size(); ++t) {
        std::printf("  %-14s : %llu\n",
                    opTypeName(static_cast<OpType>(t)),
                    static_cast<unsigned long long>(counts[t]));
    }
    std::printf("compute cycles   : %llu\n",
                static_cast<unsigned long long>(compute_cycles));
    const double mem = static_cast<double>(totalMemOps(traces));
    std::printf("write fraction   : %.1f%%\n",
                mem > 0 ? 100.0 * double(counts[1]) / mem : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    if (std::strcmp(argv[1], "gen") == 0) {
        if (argc < 4)
            return usage();
        const WorkloadProfile &wl = workloadByName(argv[2]);
        const unsigned threads =
            argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 16;
        const double scale = argc > 5 ? std::atof(argv[5]) : 1.0;

        const auto traces = generateTraces(wl, threads, scale);
        std::ofstream os(argv[3], std::ios::binary);
        if (!os)
            dve_fatal("cannot open '", argv[3], "' for writing");
        writeTraces(os, traces);
        std::printf("wrote '%s' (%s/%s)\n", argv[3], wl.suite.c_str(),
                    wl.name.c_str());
        summarize(traces);
        return 0;
    }

    if (std::strcmp(argv[1], "info") == 0) {
        std::ifstream is(argv[2], std::ios::binary);
        if (!is)
            dve_fatal("cannot open '", argv[2], "'");
        const auto traces = readTraces(is);
        std::printf("trace '%s'\n", argv[2]);
        summarize(traces);
        return 0;
    }
    return usage();
}
