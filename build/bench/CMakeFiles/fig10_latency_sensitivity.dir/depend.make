# Empty dependencies file for fig10_latency_sensitivity.
# This may be replaced when dependencies are built.
