/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, insertion sequence) so
 * same-tick events execute in deterministic FIFO order. All simulator
 * components schedule through the queue; nothing observes wall-clock time.
 *
 * Internals (the simulator inner loop — see DESIGN.md "Hot path"):
 *
 *  - Callbacks live in pooled Records recycled through an intrusive
 *    free list; callables up to 48 bytes are stored inline (the replay
 *    engine's step closures are 16), larger ones fall back to one heap
 *    allocation. No std::function, no per-event allocation.
 *  - Priority order comes from a two-level calendar (ladder) queue: a
 *    ring of 256 buckets each spanning 2^14 ticks (16 ns) with a
 *    non-empty bitmap for O(1) bucket skip; the current bucket is
 *    subdivided into 1024 rung slots of 2^4 ticks each; only the
 *    current rung slot's events sit in a small 4-ary min-heap, and
 *    events beyond the ring's day (~4.2 us) wait in an overflow 4-ary
 *    min-heap. Every sorted structure compares (when, seq) with the
 *    same lexicographic rule, so execution order is exactly the old
 *    binary-heap order regardless of which structures an event
 *    transits.
 */

#ifndef DVE_SIM_EVENT_QUEUE_HH
#define DVE_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace dve
{

/**
 * The global event queue and simulated clock.
 *
 * Usage: schedule(when, fn) then run() / runUntil(t). Events scheduled in
 * the past panic; events scheduled at now() run within the current
 * processing step (after already-pending same-tick events).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Destroy pending callbacks without invoking them. Records
        // themselves are owned by the chunk vector.
        for (const auto &e : near_.ents)
            e.rec->destroy(e.rec);
        for (const auto &e : overflow_.ents)
            e.rec->destroy(e.rec);
        for (Record *head : rung_)
            for (Record *r = head; r; r = r->next)
                r->destroy(r);
        for (Record *head : buckets_)
            for (Record *r = head; r; r = r->next)
                r->destroy(r);
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute tick @p when (>= now). */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        dve_assert(when >= now_, "scheduling into the past: ", when,
                   " < ", now_);
        using Fn = std::decay_t<F>;
        Record *r = allocRecord();
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(r->storage))
                Fn(std::forward<F>(fn));
            r->invoke = [](Record *rec) {
                (*std::launder(reinterpret_cast<Fn *>(rec->storage)))();
            };
            r->destroy = [](Record *rec) {
                std::launder(reinterpret_cast<Fn *>(rec->storage))->~Fn();
            };
        } else {
            ::new (static_cast<void *>(r->storage))
                Fn *(new Fn(std::forward<F>(fn)));
            r->invoke = [](Record *rec) {
                (**std::launder(
                    reinterpret_cast<Fn **>(rec->storage)))();
            };
            r->destroy = [](Record *rec) {
                delete *std::launder(
                    reinterpret_cast<Fn **>(rec->storage));
            };
        }
        r->when = when;
        r->seq = nextSeq_++;
        place(r);
        ++size_;
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /** Tick of the next event; maxTick if none. */
    Tick
    nextEventTick() const
    {
        if (!near_.ents.empty())
            return near_.ents.front().when;
        if (rungCount_ > 0) {
            // Peek the next non-empty rung slot; its list is unsorted,
            // so scan it (slot occupancy is small by construction).
            const std::uint64_t base = curBid_ << subPerBucketShift;
            for (std::uint64_t s = nextSub_ - base; s < subSlots; ++s) {
                if (!rungTest(s))
                    continue;
                Tick best = maxTick;
                for (Record *r = rung_[s]; r; r = r->next)
                    best = r->when < best ? r->when : best;
                return best;
            }
        }
        if (ringCount_ > 0) {
            for (std::uint64_t k = 1; k < numBuckets; ++k) {
                const std::uint64_t idx = (curBid_ + k) & bucketMask;
                if (!bitmapTest(idx))
                    continue;
                Tick best = maxTick;
                for (Record *r = buckets_[idx]; r; r = r->next)
                    best = r->when < best ? r->when : best;
                return best;
            }
        }
        if (!overflow_.ents.empty())
            return overflow_.ents.front().when;
        return maxTick;
    }

    /**
     * Run events until the queue drains or @p limit events executed.
     * @return number of events executed.
     */
    std::uint64_t
    run(std::uint64_t limit = ~std::uint64_t(0))
    {
        std::uint64_t executed = 0;
        while (size_ > 0 && executed < limit) {
            step();
            ++executed;
        }
        return executed;
    }

    /**
     * Run events with tick <= @p until; afterwards now() == max(until, now).
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Tick until)
    {
        std::uint64_t executed = 0;
        while (size_ > 0 && nextReady() && near_.ents.front().when <= until) {
            step();
            ++executed;
        }
        if (now_ < until)
            now_ = until;
        return executed;
    }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    static constexpr std::size_t inlineBytes = 48;
    static constexpr unsigned bucketShift = 14;         ///< 16 ns span
    static constexpr std::uint64_t numBuckets = 256;    ///< 4.2 us day
    static constexpr std::uint64_t bucketMask = numBuckets - 1;
    static constexpr unsigned subShift = 4;             ///< 16-tick slot
    static constexpr unsigned subPerBucketShift = bucketShift - subShift;
    static constexpr std::uint64_t subSlots = 1ull << subPerBucketShift;
    static constexpr std::uint64_t subMask = subSlots - 1;

    struct Record
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Record *next = nullptr; ///< bucket chain / free list
        void (*invoke)(Record *) = nullptr;
        void (*destroy)(Record *) = nullptr;
        alignas(std::max_align_t) unsigned char storage[inlineBytes];
    };

    /** POD entry of the near/overflow heaps. */
    struct HeapEnt
    {
        Tick when;
        std::uint64_t seq;
        Record *rec;

        bool
        before(const HeapEnt &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    /** 4-ary min-heap on (when, seq): shallower than binary, and the
     *  four children share a cache line pair. */
    struct MinHeap
    {
        std::vector<HeapEnt> ents;

        void
        push(HeapEnt e)
        {
            std::size_t i = ents.size();
            ents.push_back(e);
            while (i > 0) {
                const std::size_t p = (i - 1) / 4;
                if (!e.before(ents[p]))
                    break;
                ents[i] = ents[p];
                i = p;
            }
            ents[i] = e;
        }

        HeapEnt
        pop()
        {
            const HeapEnt top = ents.front();
            const HeapEnt last = ents.back();
            ents.pop_back();
            if (!ents.empty()) {
                std::size_t i = 0;
                const std::size_t n = ents.size();
                for (;;) {
                    std::size_t best = i;
                    HeapEnt bestEnt = last;
                    const std::size_t c0 = i * 4 + 1;
                    const std::size_t cEnd = c0 + 4 < n ? c0 + 4 : n;
                    for (std::size_t c = c0; c < cEnd; ++c) {
                        if (ents[c].before(bestEnt)) {
                            best = c;
                            bestEnt = ents[c];
                        }
                    }
                    if (best == i)
                        break;
                    ents[i] = bestEnt;
                    i = best;
                }
                ents[i] = last;
            }
            return top;
        }
    };

    /** File a record into its rung slot (current bucket only). */
    void
    rungPlace(Record *r)
    {
        const std::uint64_t idx = (r->when >> subShift) & subMask;
        r->next = rung_[idx];
        rung_[idx] = r;
        rungSet(idx);
        ++rungCount_;
    }

    /**
     * Route a record to the near heap, rung, ring, or overflow.
     *
     * The ring only accepts buckets below ringEndBid_, which is FIXED
     * between re-anchors: if it slid with curBid_, a later schedule
     * could ring-file an event beyond the overflow minimum and the
     * bucket scan would execute it first. Likewise the rung only
     * accepts slots at or above nextSub_ -- earlier slots were already
     * drained into the near heap, which is the catch-all for
     * stragglers.
     */
    void
    place(Record *r)
    {
        const std::uint64_t bid = r->when >> bucketShift;
        if (size_ == 0) {
            // Empty queue: re-anchor the day on this event so the
            // schedule-one/run-one replay pattern stays heap-only.
            curBid_ = bid;
            ringEndBid_ = bid + numBuckets;
            nextSub_ = (r->when >> subShift) + 1;
            near_.push({r->when, r->seq, r});
            return;
        }
        if (bid == curBid_) {
            if ((r->when >> subShift) < nextSub_)
                near_.push({r->when, r->seq, r});
            else
                rungPlace(r);
        } else if (bid < curBid_) {
            near_.push({r->when, r->seq, r});
        } else if (bid < ringEndBid_) {
            const std::uint64_t idx = bid & bucketMask;
            r->next = buckets_[idx];
            buckets_[idx] = r;
            bitmapSet(idx);
            ++ringCount_;
        } else {
            overflow_.push({r->when, r->seq, r});
        }
    }

    /** Drain the next non-empty rung slot into the near heap.
     *  Pre: rungCount_ > 0 and every rung record is in a slot at or
     *  above nextSub_. */
    void
    drainRungSlot()
    {
        std::uint64_t s = nextSub_ - (curBid_ << subPerBucketShift);
        for (std::uint64_t w = s >> 6; w < subSlots / 64; ++w) {
            std::uint64_t word = rungBitmap_[w];
            if (w == s >> 6)
                word &= ~std::uint64_t(0) << (s & 63);
            if (!word)
                continue;
            const std::uint64_t idx =
                (w << 6) + static_cast<std::uint64_t>(
                               __builtin_ctzll(word));
            Record *r = rung_[idx];
            rung_[idx] = nullptr;
            rungBitmap_[w] &= ~(std::uint64_t(1) << (idx & 63));
            nextSub_ = (curBid_ << subPerBucketShift) + idx + 1;
            for (; r; r = r->next) {
                near_.push({r->when, r->seq, r});
                --rungCount_;
            }
            return;
        }
        dve_panic("rung bitmap inconsistent with rungCount_");
    }

    /** Ensure the overall minimum event sits at near_.front().
     *  @return false when the queue is empty. */
    bool
    nextReady()
    {
        if (!near_.ents.empty())
            return true;
        if (rungCount_ > 0) {
            drainRungSlot();
            return true;
        }
        if (ringCount_ > 0) {
            for (std::uint64_t k = 1;; ++k) {
                const std::uint64_t idx = (curBid_ + k) & bucketMask;
                if (!bitmapTest(idx))
                    continue;
                curBid_ += k;
                nextSub_ = curBid_ << subPerBucketShift;
                Record *r = buckets_[idx];
                buckets_[idx] = nullptr;
                bitmapClear(idx);
                while (r) {
                    Record *next = r->next;
                    rungPlace(r);
                    --ringCount_;
                    r = next;
                }
                drainRungSlot();
                return true;
            }
        }
        if (overflow_.ents.empty())
            return false;
        // Re-anchor the ring at the overflow minimum's day and migrate
        // everything that now fits. Migrated events move at most once:
        // overflow pops come out in (when, seq) order, so the loop
        // stops at the first event beyond the new day.
        curBid_ = overflow_.ents.front().when >> bucketShift;
        ringEndBid_ = curBid_ + numBuckets;
        nextSub_ = curBid_ << subPerBucketShift;
        while (!overflow_.ents.empty()) {
            const HeapEnt &top = overflow_.ents.front();
            const std::uint64_t bid = top.when >> bucketShift;
            if (bid >= ringEndBid_)
                break;
            const HeapEnt e = overflow_.pop();
            if (bid == curBid_) {
                rungPlace(e.rec);
            } else {
                const std::uint64_t idx = bid & bucketMask;
                e.rec->next = buckets_[idx];
                buckets_[idx] = e.rec;
                bitmapSet(idx);
                ++ringCount_;
            }
        }
        drainRungSlot();
        return true;
    }

    void
    step()
    {
        nextReady();
        const HeapEnt e = near_.pop();
        Record *r = e.rec;
        now_ = e.when;
        ++executed_;
        --size_;
        // Free on scope exit even if the callback throws (fuzz
        // monitors abort runs by throwing through run()).
        struct Reclaim
        {
            EventQueue *q;
            Record *r;
            ~Reclaim()
            {
                r->destroy(r);
                r->next = q->freeList_;
                q->freeList_ = r;
            }
        } reclaim{this, r};
        r->invoke(r);
    }

    Record *
    allocRecord()
    {
        if (!freeList_) {
            constexpr std::size_t chunkRecords = 64;
            chunks_.push_back(std::make_unique<Record[]>(chunkRecords));
            Record *chunk = chunks_.back().get();
            for (std::size_t i = 0; i < chunkRecords; ++i) {
                chunk[i].next = freeList_;
                freeList_ = &chunk[i];
            }
        }
        Record *r = freeList_;
        freeList_ = r->next;
        r->next = nullptr;
        return r;
    }

    bool
    bitmapTest(std::uint64_t idx) const
    {
        return bitmap_[idx >> 6] >> (idx & 63) & 1;
    }
    void bitmapSet(std::uint64_t idx)
    {
        bitmap_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }
    void bitmapClear(std::uint64_t idx)
    {
        bitmap_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }

    bool
    rungTest(std::uint64_t idx) const
    {
        return rungBitmap_[idx >> 6] >> (idx & 63) & 1;
    }
    void rungSet(std::uint64_t idx)
    {
        rungBitmap_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    MinHeap near_;     ///< events in the current rung slot (sorted source)
    MinHeap overflow_; ///< events beyond the ring's day
    Record *buckets_[numBuckets] = {};
    std::uint64_t bitmap_[numBuckets / 64] = {};
    Record *rung_[subSlots] = {};   ///< current bucket, by 16-tick slot
    std::uint64_t rungBitmap_[subSlots / 64] = {};
    std::uint64_t curBid_ = 0;   ///< absolute bucket id of the rung's span
    std::uint64_t ringEndBid_ = numBuckets; ///< day end (fixed per anchor)
    std::uint64_t nextSub_ = 0;  ///< first undrained absolute sub-slot id
    std::uint64_t ringCount_ = 0;
    std::uint64_t rungCount_ = 0;
    Record *freeList_ = nullptr;
    std::vector<std::unique_ptr<Record[]>> chunks_;

    Tick now_ = 0;
    std::size_t size_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace dve

#endif // DVE_SIM_EVENT_QUEUE_HH
