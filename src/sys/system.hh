/**
 * @file
 * Top-level system builder and experiment runner.
 *
 * A System wires the Table II machine for one protection/replication
 * scheme and runs workloads against it, reporting the ROI metrics the
 * paper's figures are built from: runtime, inter-socket traffic, request
 * classification, LLC MPKI and DRAM energy.
 */

#ifndef DVE_SYS_SYSTEM_HH
#define DVE_SYS_SYSTEM_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "coherence/engine.hh"
#include "common/histogram.hh"
#include "core/dve_engine.hh"
#include "cpu/replay.hh"
#include "energy/dram_energy.hh"
#include "trace/workloads.hh"

namespace dve
{

/** The schemes the paper evaluates against each other. */
enum class SchemeKind : std::uint8_t
{
    BaselineNuma,    ///< no replication (Fig 6 baseline)
    IntelMirror,     ///< intra-socket mirroring, primary-read only
    IntelMirrorPlus, ///< the paper's improved Intel-mirroring++ strawman
    DveAllow,
    DveDeny,
    DveDynamic,
};

const char *schemeKindName(SchemeKind k);

/** Configuration of one simulated system. */
struct SystemConfig
{
    SchemeKind scheme = SchemeKind::BaselineNuma;
    EngineConfig engine;  ///< Table II defaults
    DveConfig dve;        ///< used by the Dvé schemes
    DramEnergyParams energy;
    double warmupFraction = 0.05;
    unsigned threads = 16;
};

/** ROI metrics of one workload run. */
struct RunResult
{
    std::string workload;
    std::string scheme;

    Tick roiTime = 0;
    std::uint64_t memOps = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t interSocketBytes = 0;
    double mpki = 0.0; ///< LLC misses per kilo-instruction
    /** Fig 7 request-class mix at the home directories (fractions). */
    std::array<double, numReqClasses> classMix{};
    double memoryEnergyNj = 0.0;

    /** Extra scheme-specific counters (replica reads, RM pushes, ...). */
    std::map<std::string, double> extra;

    // ---- Observability (ROI-windowed latency distributions) ------------
    /** End-to-end request latency over the ROI (ticks). */
    LatencyDigest reqLatency;
    /** Per-message fabric delivery latency over the ROI (ticks). */
    LatencyDigest hopLatency;
    /** Memory-controller read service latency over the ROI (ticks). */
    LatencyDigest memReadLatency;
    /** Fabric retry-ladder wait over the ROI (Dvé schemes; ticks). */
    LatencyDigest retryWait;
    /** Repair-queue sojourn over the ROI (Dvé schemes; ticks). */
    LatencyDigest repairSojourn;

    /** Raw ROI request-latency histogram (bucket-wise mergeable). */
    Histogram reqLatencyHist;

    /**
     * Chrome trace_event JSON of the run, non-empty only when the engine
     * was built with EngineConfig::traceCapacity > 0.
     */
    std::string traceJson;

    /**
     * Deterministic machine-readable export: fixed key order, integral
     * tick values, fixed float formatting. Byte-identical across
     * DVE_BENCH_JOBS settings for the same run.
     */
    std::string toJson() const;
};

/** One simulated machine, reusable across workloads. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /** Run a workload; @p scale shrinks/grows its trace length. */
    RunResult run(const WorkloadProfile &profile, double scale = 1.0);

    CoherenceEngine &engine() { return *engine_; }

    /** Non-null for the Dvé schemes. */
    DveEngine *dveEngine() { return dveEngine_; }

    const SystemConfig &config() const { return cfg_; }

    /** Build the EngineConfig a scheme implies (exposed for tests). */
    static EngineConfig engineConfigFor(const SystemConfig &cfg);

  private:
    struct DramSnapshot
    {
        std::uint64_t activates = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    SystemConfig cfg_;
    std::unique_ptr<CoherenceEngine> engine_;
    DveEngine *dveEngine_ = nullptr;
    DramEnergyModel energyModel_;
};

} // namespace dve

#endif // DVE_SYS_SYSTEM_HH
