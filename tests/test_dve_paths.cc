/**
 * @file
 * Targeted tests for Dvé corner paths: degraded-line funnelling, the
 * remote-replica routing choice on >2-socket machines, recovery during
 * replica-directory-served reads, write-upgrade flows through the
 * replica directory, and accounting invariants.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "core/dve_engine.hh"

namespace dve
{
namespace
{

EngineConfig
smallConfig(unsigned sockets = 2)
{
    EngineConfig cfg;
    cfg.sockets = sockets;
    cfg.l1Bytes = 1024;
    cfg.llcBytes = 16 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    return cfg;
}

Addr
addrAt(unsigned page, unsigned line_in_page = 0)
{
    return Addr(page) * pageBytes + Addr(line_in_page) * lineBytes;
}

TEST(DvePaths, DegradedReplicaFunnelsToHomeAtBaselineCost)
{
    DveEngine e(smallConfig(), DveConfig{});
    Tick t = 0;

    // Hard-kill the replica copy of page 0 (socket 1's channel pair).
    FaultDescriptor f;
    f.scope = FaultScope::Controller;
    f.socket = 1;
    const auto id = e.faultRegistry().inject(f);

    // Socket 1's read detects the failure locally, recovers from home,
    // cannot repair (hard) -> degraded.
    const auto r1 = e.access(1, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r1.value, 0u);
    EXPECT_GT(e.degradedLines(), 0u);
    e.faultRegistry().clear(id);

    // Later reads of the degraded line go straight to home (no repeated
    // recovery events).
    const auto recoveries = e.replicaRecoveries();
    // Evict the cached copy first via a remote write.
    t = e.access(0, 0, addrAt(0), true, 9, r1.done).done;
    const auto r2 = e.access(1, 1, addrAt(0), false, 0, t);
    EXPECT_EQ(r2.value, 9u);
    EXPECT_EQ(e.replicaRecoveries(), recoveries);
}

TEST(DvePaths, FourSocketReadsUseNearestOfHomeAndReplica)
{
    // On 4 sockets, page p homes at p%4 with its replica on p%4+1.
    DveEngine e(smallConfig(4), DveConfig{});
    Tick t = 0;

    // Socket 1 reads a page homed at socket 0: socket 1 IS the replica
    // site -> fully local, no inter-socket traffic.
    t = e.access(1, 0, addrAt(0), false, 0, t).done;
    EXPECT_EQ(e.interconnect().interSocketMessages(), 0u);
    EXPECT_EQ(e.replicaLocalReads(), 1u);

    // Socket 3 reads the same page: neither home (0) nor replica (1)
    // is local -> one cross-socket transaction.
    t = e.access(3, 0, addrAt(0, 1), false, 0, t).done;
    EXPECT_GT(e.interconnect().interSocketMessages(), 0u);
}

TEST(DvePaths, FourSocketStressValueValidated)
{
    EngineConfig cfg = smallConfig(4);
    cfg.validateValues = true;
    DveEngine e(cfg, DveConfig{});
    Rng rng(5150);
    Tick t = 0;
    for (int op = 0; op < 20000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(32));
        const Addr a = addrAt(rng.next(12), rng.next(8));
        t = e.access(c / 8, c % 8, a, rng.chance(0.3), rng.engine()(), t)
                .done;
    }
    EXPECT_EQ(e.sdcReadsObserved(), 0u);
    EXPECT_GT(e.replicaLocalReads(), 0u);
}

TEST(DvePaths, WriteUpgradeThroughReplicaDirectory)
{
    DveEngine e(smallConfig(), DveConfig{});
    Tick t = 0;
    // Socket 1 reads (replica-local), then upgrades to write: the GETX
    // must serialize at home and leave the line owned by socket 1.
    t = e.access(1, 0, addrAt(0), false, 0, t).done;
    t = e.access(1, 0, addrAt(0), true, 123, t).done;

    DirEntry *d = e.directory(0).find(lineNum(addrAt(0)));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->state, LineState::M);
    EXPECT_EQ(d->owner, 1);

    // The replica directory knows its socket owns the line.
    const auto backing =
        e.replicaDirectory(1).peekBacking(lineNum(addrAt(0)));
    ASSERT_TRUE(backing.has_value());
    EXPECT_EQ(backing->state, RepState::M);

    // Home-side read fetches the dirty data from socket 1.
    const auto r = e.access(0, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r.value, 123u);
}

TEST(DvePaths, RecoveryDuringReplicaServedReadUsesHome)
{
    // Fault only the replica memory; a deny-protocol local read must
    // transparently recover from home and repair the replica.
    DveEngine e(smallConfig(), DveConfig{});
    for (unsigned chip : {3u, 10u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Chip;
        f.socket = 1;
        f.chip = chip;
        f.transient = true;
        e.faultRegistry().inject(f);
    }
    const auto r = e.access(1, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(r.value, 0u);
    EXPECT_GE(e.replicaRecoveries(), 1u);
    EXPECT_EQ(e.faultRegistry().activeCount(), 0u); // repaired
    EXPECT_EQ(e.machineCheckExceptions(), 0u);
}

TEST(DvePaths, ReplicaWritesAreOffTheCriticalPathButSynchronous)
{
    // A dirty eviction updates BOTH memories; the baseline writes one.
    EngineConfig cfg = smallConfig();
    cfg.llcBytes = 4 * 1024;
    DveEngine dve(cfg, DveConfig{});
    CoherenceEngine base(cfg);

    auto flushOne = [&](CoherenceEngine &e) {
        Tick t = e.access(0, 0, addrAt(0), true, 7, 0).done;
        for (unsigned i = 1; i <= 30; ++i) {
            const Addr a = addrAt(2 * i, 0);
            if (lineNum(a) % 4 != lineNum(addrAt(0)) % 4)
                continue;
            t = e.access(0, 0, a, false, 0, t).done;
        }
    };
    flushOne(dve);
    flushOne(base);
    EXPECT_EQ(dve.memory(0).peek(addrAt(0)), 7u);
    EXPECT_EQ(dve.memory(1).peek(addrAt(0)), 7u);
    EXPECT_EQ(base.memory(1).peek(addrAt(0)), 0u);
}

TEST(DvePaths, StatsAccountingConsistency)
{
    DveEngine e(smallConfig(), DveConfig{});
    Rng rng(11);
    Tick t = 0;
    for (int op = 0; op < 8000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(16));
        t = e.access(c / 8, c % 8, addrAt(rng.next(32), rng.next(8)),
                     rng.chance(0.2), rng.engine()(), t)
                .done;
    }
    // Speculation outcomes partition speculative attempts.
    EXPECT_EQ(e.speculationWins() + e.speculationSquashes(),
              e.dveStats().get("speculation_wins")
                  + e.dveStats().get("speculation_squashes"));
    // Every replica write corresponds to a writeback of a replicated
    // line (all lines are replicated under the fixed mapping).
    EXPECT_EQ(e.dveStats().get("replica_writes"),
              e.stats().get("writebacks"));
    // No errors were injected: reliability counters stay zero.
    EXPECT_EQ(e.machineCheckExceptions(), 0u);
    EXPECT_EQ(e.systemCorrectedErrors(), 0u);
    EXPECT_EQ(e.replicaRecoveries(), 0u);
}

TEST(DvePaths, DisableReplicationClearsDegradedState)
{
    EngineConfig cfg = smallConfig();
    DveConfig d;
    d.replicateAll = false;
    DveEngine e(cfg, d);
    e.enableReplication(0, 1);

    FaultDescriptor f;
    f.scope = FaultScope::Controller;
    f.socket = 1;
    const auto id = e.faultRegistry().inject(f);
    e.access(1, 0, addrAt(0), false, 0, 0); // degrade the replica
    EXPECT_GT(e.degradedLines(), 0u);
    e.faultRegistry().clear(id);

    e.disableReplication(0);
    EXPECT_EQ(e.degradedLines(), 0u);
}

TEST(DvePaths, PatrolScrubUnderChannelScopeFault)
{
    DveEngine e(smallConfig(), DveConfig{});
    Tick t = 0;

    // Populate one page from the replica socket (so the replica directory
    // holds M, not RM, and the scrub sweeps both copies of every line).
    for (unsigned i = 0; i < 16; ++i)
        t = e.access(1, 0, addrAt(0, i), true, 100 + i, t).done;

    // Hard-kill channel 0 of the replica socket: with two channels, every
    // even line slot of the page loses its replica copy.
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.socket = 1;
    f.channel = 0;
    const auto id = e.faultRegistry().inject(f);

    const auto rep = e.patrolScrub(t);
    EXPECT_EQ(rep.linesScanned, 16u);
    EXPECT_EQ(rep.replicaRecoveries, 8u); // half the lines map to channel 0
    EXPECT_EQ(rep.dataLost, 0u);          // home copies cover every loss
    EXPECT_EQ(e.degradedLines(), 8u);     // hard fault: repairs fail
    EXPECT_EQ(e.pendingRepairs(), 8u);

    // A second sweep skips the degraded replica copies instead of
    // re-recovering them.
    const auto rep2 = e.patrolScrub(rep.finishedAt);
    EXPECT_EQ(rep2.replicaRecoveries, 0u);
    EXPECT_EQ(rep2.dataLost, 0u);

    // Once the channel comes back, one maintenance pass re-replicates
    // every degraded line.
    e.faultRegistry().clear(id);
    const auto m =
        e.runMaintenance(rep2.finishedAt + 1000 * ticksPerUs);
    EXPECT_EQ(m.healed, 8u);
    EXPECT_EQ(m.retired, 0u);
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_EQ(e.reReplications(), 8u);
}

TEST(DvePaths, PatrolScrubUnderControllerScopeFault)
{
    DveEngine e(smallConfig(), DveConfig{});
    Tick t = 0;

    // Page 0 homes at socket 0; page 1's replica lives at socket 0. A
    // controller-scope fault on socket 0 therefore degrades home copies
    // of page 0 and replica copies of page 1.
    for (unsigned i = 0; i < 4; ++i)
        t = e.access(0, 0, addrAt(0, i), true, 10 + i, t).done;
    for (unsigned i = 0; i < 4; ++i)
        t = e.access(0, 0, addrAt(1, i), true, 20 + i, t).done;

    FaultDescriptor f;
    f.scope = FaultScope::Controller;
    f.socket = 0;
    const auto id = e.faultRegistry().inject(f);

    const auto rep = e.patrolScrub(t);
    EXPECT_EQ(rep.linesScanned, 8u);
    EXPECT_GT(rep.replicaRecoveries, 0u);
    EXPECT_EQ(rep.dataLost, 0u); // the surviving socket covers every line
    EXPECT_GT(e.degradedLines(), 0u);

    // Clearing the fault and running maintenance restores dual-copy
    // service everywhere.
    e.faultRegistry().clear(id);
    e.runMaintenance(rep.finishedAt + 1000 * ticksPerUs);
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_EQ(e.retiredPages(), 0u);
}

TEST(DvePaths, MaintenanceBackoffThenHeal)
{
    DveEngine e(smallConfig(), DveConfig{});

    FaultDescriptor f;
    f.scope = FaultScope::Controller;
    f.socket = 1;
    const auto id = e.faultRegistry().inject(f);
    const auto r1 = e.access(1, 0, addrAt(0), false, 0, 0);
    ASSERT_EQ(e.degradedLines(), 1u);
    ASSERT_EQ(e.pendingRepairs(), 1u);
    ASSERT_EQ(e.recoveryLatencies().size(), 1u);

    // Before the backoff deadline the task is deferred, not attempted.
    const auto m0 = e.runMaintenance(r1.done);
    EXPECT_EQ(m0.tasksRun, 0u);
    EXPECT_EQ(e.pendingRepairs(), 1u);

    // Past the deadline but with the fault still active: one failed
    // attempt, requeued with doubled backoff.
    const auto m1 = e.runMaintenance(r1.done + 3 * ticksPerUs);
    EXPECT_EQ(m1.tasksRun, 1u);
    EXPECT_EQ(m1.healed, 0u);
    EXPECT_EQ(e.repairRetries(), 1u);
    EXPECT_EQ(e.pendingRepairs(), 1u);

    // Fault cleared: the next attempt re-replicates the line.
    e.faultRegistry().clear(id);
    const auto m2 = e.runMaintenance(r1.done + 100 * ticksPerUs);
    EXPECT_EQ(m2.tasksRun, 1u);
    EXPECT_EQ(m2.healed, 1u);
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_EQ(e.pendingRepairs(), 0u);
    EXPECT_EQ(e.reReplications(), 1u);
    EXPECT_EQ(e.retiredPages(), 0u);
    EXPECT_GT(e.degradedResidency(r1.done + 100 * ticksPerUs), 0.0);
}

TEST(DvePaths, ExhaustedRetriesRetireTheFrame)
{
    DveEngine e(smallConfig(), DveConfig{});

    // Two permanent row faults in different chips at the row line 0 of
    // page 0 decodes to: a detected-uncorrectable home copy that no
    // in-place repair can fix, but that a spare frame (different row)
    // escapes.
    for (unsigned chip : {2u, 3u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Row;
        f.socket = 0;
        f.chip = chip;
        const auto fid = e.faultRegistry().inject(f);
        EXPECT_NE(fid, 0u);
    }

    const auto r1 = e.access(0, 0, addrAt(0), false, 0, 0);
    ASSERT_EQ(e.degradedLines(), 1u);
    EXPECT_GT(e.replicaRecoveries(), 0u);

    // Drive maintenance until the retry budget (default 3) is exhausted;
    // the fourth attempt retires the frame to a spare page.
    Tick now = r1.done;
    for (int pass = 0; pass < 5; ++pass) {
        now += 1000 * ticksPerUs;
        e.runMaintenance(now);
    }
    EXPECT_TRUE(e.pageRetired(0, 0));
    EXPECT_FALSE(e.pageRetired(1, 0));
    EXPECT_EQ(e.retiredPages(), 1u);
    EXPECT_EQ(e.degradedLines(), 0u); // the spare frame dodges the rows
    EXPECT_GE(e.reReplications(), 1u);

    // The retired frame serves reads and writes through the spare.
    Tick t = e.access(1, 0, addrAt(0), true, 77, now).done;
    const auto r2 = e.access(0, 1, addrAt(0), false, 0, t);
    EXPECT_EQ(r2.value, 77u);
    EXPECT_EQ(e.degradedLines(), 0u);
}

TEST(DvePaths, SelfHealDisabledLeavesLinesDegraded)
{
    DveConfig d;
    d.selfHeal = false;
    DveEngine e(smallConfig(), d);

    FaultDescriptor f;
    f.scope = FaultScope::Controller;
    f.socket = 1;
    const auto id = e.faultRegistry().inject(f);
    const auto r1 = e.access(1, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(e.degradedLines(), 1u);
    EXPECT_EQ(e.pendingRepairs(), 0u);
    e.faultRegistry().clear(id);

    const auto m = e.runMaintenance(r1.done + 1000 * ticksPerUs);
    EXPECT_EQ(m.tasksRun, 0u);
    EXPECT_EQ(e.degradedLines(), 1u);
    EXPECT_EQ(e.reReplications(), 0u);
}

TEST(DvePaths, DumpStatsCoversAllGroups)
{
    DveEngine e(smallConfig(), DveConfig{});
    e.access(1, 0, addrAt(0), false, 0, 0);
    std::ostringstream os;
    e.dumpStats(os);
    const std::string s = os.str();
    for (const char *needle :
         {"engine.reads", "noc.inter_socket_bytes", "mem0.reads",
          "mem0.dram0.row_hits", "dve.replica_local_reads",
          "rdir1.onchip_hits"}) {
        EXPECT_NE(s.find(needle), std::string::npos) << needle;
    }
}

} // namespace
} // namespace dve
