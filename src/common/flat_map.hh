/**
 * @file
 * Open-addressing hash map for the simulator hot path.
 *
 * Replaces std::unordered_map for the per-access lookup structures
 * (home directory, replica-directory backing, memory contents, golden
 * image). Design choices, in order of importance:
 *
 *  - Linear probing over a power-of-two table: one cache line per
 *    probe, no per-node allocation, no pointer chasing.
 *  - Fibonacci multiply + xor-shift hash: line/page addresses are
 *    strided, and an identity hash (libstdc++'s default for integers)
 *    would cluster entire probe ranges onto a few buckets. One
 *    multiply plus one fold keeps the (serial) hash latency well under
 *    a full-avalanche finalizer while still spreading the high
 *    product bits into the masked low bits.
 *  - Backward-shift deletion: no tombstones, so the load factor bound
 *    (3/4) holds under heavy insert/erase churn (busy-until clocks
 *    erase on every transaction retirement).
 *  - Keys and values must be trivially copyable: slots relocate with
 *    plain assignment during rehash and backward-shift.
 *
 * Iteration order is deterministic for a fixed insertion/erase/rehash
 * history but depends on table capacity; output paths must sort
 * whatever they collect (enforced by tools/check_iteration_order.py).
 */

#ifndef DVE_COMMON_FLAT_MAP_HH
#define DVE_COMMON_FLAT_MAP_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace dve
{

/**
 * Fibonacci multiply + xor-shift fold of a 64-bit key.
 *
 * The golden-ratio multiply pushes entropy toward the high product
 * bits; the fold brings it back down so `mix & (pow2 - 1)` bucket
 * selection sees it. Not full-avalanche, but low-bit-clean for the
 * strided keys the simulator uses (line addresses, 64 B apart), and
 * half the latency of splitmix64 on the dependent lookup path.
 */
inline std::uint64_t
flatMapMix(std::uint64_t x)
{
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return x;
}

template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_trivially_copyable_v<K>,
                  "FlatMap keys relocate by assignment");
    static_assert(std::is_trivially_copyable_v<V>,
                  "FlatMap values relocate by assignment");
    static_assert(sizeof(K) <= sizeof(std::uint64_t) &&
                      (std::is_integral_v<K> || std::is_enum_v<K>),
                  "FlatMap hashes keys as 64-bit integers");

  public:
    /** Public slot layout; supports structured bindings like pair. */
    struct Slot
    {
        K first;
        V second;
    };

    template <bool Const>
    class Iter
    {
        using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
        using SlotT = std::conditional_t<Const, const Slot, Slot>;

      public:
        Iter() = default;

        template <bool C = Const, typename = std::enable_if_t<C>>
        Iter(const Iter<false> &o) : m_(o.m_), i_(o.i_)
        {
        }

        SlotT &operator*() const { return m_->slots_[i_]; }
        SlotT *operator->() const { return &m_->slots_[i_]; }

        Iter &
        operator++()
        {
            i_ = m_->nextUsed(i_ + 1);
            return *this;
        }

        friend bool
        operator==(const Iter &a, const Iter &b)
        {
            // The map pointer matters: end() of one map must not
            // compare equal to a slot of a different same-capacity
            // map, and a default-constructed iterator is equal only
            // to another default-constructed one.
            return a.m_ == b.m_ && a.i_ == b.i_;
        }
        friend bool
        operator!=(const Iter &a, const Iter &b)
        {
            return !(a == b);
        }

      private:
        friend class FlatMap;
        template <bool>
        friend class Iter;

        Iter(MapT *m, std::size_t i) : m_(m), i_(i) {}

        MapT *m_ = nullptr;
        std::size_t i_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Grow so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        if (n == 0)
            return; // an intentionally-empty map stays unallocated
        // A table for anything near SIZE_MAX entries cannot exist
        // (each slot is at least two bytes), and the doubling loop
        // below would wrap around and spin forever; fail loudly.
        if (n > std::numeric_limits<std::size_t>::max() / 8)
            throw std::length_error("FlatMap::reserve: n too large");
        std::size_t want = 16;
        while (want / 4 * 3 < n) // keep load factor under 3/4
            want *= 2;
        if (want > capacity())
            rehash(want);
    }

    void
    clear()
    {
        std::fill(used_.begin(), used_.end(), std::uint8_t(0));
        size_ = 0;
    }

    iterator begin() { return {this, nextUsed(0)}; }
    iterator end() { return {this, capacity()}; }
    const_iterator begin() const { return {this, nextUsed(0)}; }
    const_iterator end() const { return {this, capacity()}; }

    iterator find(K key) { return {this, findSlot(key)}; }
    const_iterator find(K key) const { return {this, findSlot(key)}; }

    bool contains(K key) const { return findSlot(key) != capacity(); }
    std::size_t count(K key) const { return contains(key) ? 1 : 0; }

    /** Value for @p key, value-initializing a fresh entry (like
     *  unordered_map::operator[]). */
    V &
    operator[](K key)
    {
        return slots_[insertSlot(key)].second;
    }

    bool
    erase(K key)
    {
        const std::size_t i = findSlot(key);
        if (i == capacity())
            return false;
        eraseSlot(i);
        return true;
    }

    /** Erase by iterator (from find); invalidates iterators.
     *  Erasing end() (or any past-the-end iterator) is a no-op. */
    void
    erase(iterator it)
    {
        assert(it.m_ == this && "iterator from a different FlatMap");
        if (it.i_ >= capacity())
            return;
        eraseSlot(it.i_);
    }

  private:
    std::size_t
    bucketFor(K key) const
    {
        return flatMapMix(static_cast<std::uint64_t>(key)) & mask_;
    }

    std::size_t
    nextUsed(std::size_t i) const
    {
        const std::size_t cap = capacity();
        while (i < cap && !used_[i])
            ++i;
        return i;
    }

    /** Slot index of @p key, or capacity() when absent. */
    std::size_t
    findSlot(K key) const
    {
        if (slots_.empty())
            return 0;
        for (std::size_t i = bucketFor(key);; i = (i + 1) & mask_) {
            if (!used_[i])
                return capacity();
            if (slots_[i].first == key)
                return i;
        }
    }

    /** Slot index of @p key, inserting a value-initialized entry. */
    std::size_t
    insertSlot(K key)
    {
        if ((size_ + 1) * 4 > capacity() * 3)
            rehash(capacity() ? capacity() * 2 : 16);
        for (std::size_t i = bucketFor(key);; i = (i + 1) & mask_) {
            if (!used_[i]) {
                used_[i] = 1;
                slots_[i].first = key;
                slots_[i].second = V{};
                ++size_;
                return i;
            }
            if (slots_[i].first == key)
                return i;
        }
    }

    void
    eraseSlot(std::size_t i)
    {
        // Backward-shift deletion: walk the probe chain after the hole
        // and pull back any entry whose home bucket precedes the hole.
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            if (!used_[j])
                break;
            const std::size_t h = bucketFor(slots_[j].first);
            if (((j - h) & mask_) >= ((j - i) & mask_)) {
                slots_[i] = slots_[j];
                i = j;
            }
        }
        used_[i] = 0;
        --size_;
    }

    void
    rehash(std::size_t newCap)
    {
        std::vector<Slot> oldSlots = std::move(slots_);
        std::vector<std::uint8_t> oldUsed = std::move(used_);
        slots_.assign(newCap, Slot{});
        used_.assign(newCap, 0);
        mask_ = newCap - 1;
        size_ = 0;
        for (std::size_t i = 0; i < oldSlots.size(); ++i) {
            if (!oldUsed[i])
                continue;
            for (std::size_t j = bucketFor(oldSlots[i].first);;
                 j = (j + 1) & mask_) {
                if (!used_[j]) {
                    used_[j] = 1;
                    slots_[j] = oldSlots[i];
                    ++size_;
                    break;
                }
            }
        }
    }

    std::vector<Slot> slots_;
    std::vector<std::uint8_t> used_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace dve

#endif // DVE_COMMON_FLAT_MAP_HH
