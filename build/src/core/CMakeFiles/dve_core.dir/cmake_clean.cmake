file(REMOVE_RECURSE
  "CMakeFiles/dve_core.dir/dve_engine.cc.o"
  "CMakeFiles/dve_core.dir/dve_engine.cc.o.d"
  "CMakeFiles/dve_core.dir/replica_directory.cc.o"
  "CMakeFiles/dve_core.dir/replica_directory.cc.o.d"
  "libdve_core.a"
  "libdve_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
