
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol_check/checker.cc" "src/protocol_check/CMakeFiles/dve_protocol_check.dir/checker.cc.o" "gcc" "src/protocol_check/CMakeFiles/dve_protocol_check.dir/checker.cc.o.d"
  "/root/repo/src/protocol_check/model.cc" "src/protocol_check/CMakeFiles/dve_protocol_check.dir/model.cc.o" "gcc" "src/protocol_check/CMakeFiles/dve_protocol_check.dir/model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
