#include "ecc/reed_solomon.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dve
{

namespace
{

/** Evaluate poly (coefficient of x^i at index i) at point x. */
std::uint32_t
polyEval(const GaloisField &gf, const std::vector<std::uint32_t> &p,
         std::uint32_t x)
{
    std::uint32_t acc = 0;
    for (std::size_t i = p.size(); i-- > 0;)
        acc = GaloisField::add(gf.mul(acc, x), p[i]);
    return acc;
}

} // namespace

ReedSolomon::ReedSolomon(const GaloisField &gf, unsigned n, unsigned k)
    : gf_(gf), n_(n), k_(k)
{
    dve_assert(k >= 1 && k < n, "need 1 <= k < n");
    dve_assert(n <= gf.size() - 1, "codeword longer than field order");

    // g(x) = prod_{i=1..n-k} (x - alpha^i), built low-degree-first.
    generator_.assign(1, 1);
    for (unsigned i = 1; i <= n - k; ++i) {
        const std::uint32_t root = gf_.alphaPow(i);
        std::vector<std::uint32_t> next(generator_.size() + 1, 0);
        for (std::size_t j = 0; j < generator_.size(); ++j) {
            // (g(x)) * (x + root): x*g_j goes to next[j+1], root*g_j to j.
            next[j + 1] = GaloisField::add(next[j + 1], generator_[j]);
            next[j] = GaloisField::add(next[j],
                                       gf_.mul(root, generator_[j]));
        }
        generator_ = std::move(next);
    }
}

std::vector<std::uint32_t>
ReedSolomon::encode(const std::vector<std::uint32_t> &data) const
{
    dve_assert(data.size() == k_, "encode expects k data symbols");
    const unsigned p = parity();

    // Systematic encoding: remainder of data(x) * x^p divided by g(x).
    // Synthetic division, processing data from the high-order end.
    std::vector<std::uint32_t> rem(p, 0);
    for (unsigned i = k_; i-- > 0;) {
        const std::uint32_t feedback =
            GaloisField::add(data[i], rem[p - 1]);
        for (unsigned j = p; j-- > 1;) {
            rem[j] = GaloisField::add(rem[j - 1],
                                      gf_.mul(feedback, generator_[j]));
        }
        rem[0] = gf_.mul(feedback, generator_[0]);
    }

    std::vector<std::uint32_t> cw(n_);
    std::copy(rem.begin(), rem.end(), cw.begin());
    std::copy(data.begin(), data.end(), cw.begin() + p);
    return cw;
}

std::vector<std::uint32_t>
ReedSolomon::syndromes(const std::vector<std::uint32_t> &word) const
{
    const unsigned p = parity();
    std::vector<std::uint32_t> s(p);
    for (unsigned i = 0; i < p; ++i)
        s[i] = polyEval(gf_, word, gf_.alphaPow(i + 1));
    return s;
}

bool
ReedSolomon::isCodeword(const std::vector<std::uint32_t> &word) const
{
    dve_assert(word.size() == n_, "word length mismatch");
    const auto s = syndromes(word);
    return std::all_of(s.begin(), s.end(),
                       [](std::uint32_t v) { return v == 0; });
}

std::vector<std::uint32_t>
ReedSolomon::extractData(const std::vector<std::uint32_t> &codeword) const
{
    dve_assert(codeword.size() == n_, "codeword length mismatch");
    return {codeword.begin() + parity(), codeword.end()};
}

ReedSolomon::Result
ReedSolomon::decode(const std::vector<std::uint32_t> &received,
                    unsigned max_correct) const
{
    dve_assert(received.size() == n_, "received length mismatch");
    Result res;
    res.codeword = received;

    const auto synd = syndromes(received);
    const bool clean = std::all_of(synd.begin(), synd.end(),
                                   [](std::uint32_t v) { return v == 0; });
    if (clean) {
        res.status = EccStatus::Clean;
        return res;
    }
    const unsigned cap = std::min(max_correct, t());
    if (cap == 0) {
        res.status = EccStatus::Detected;
        return res;
    }

    // Berlekamp-Massey: find the error locator polynomial sigma(x).
    const unsigned p = parity();
    std::vector<std::uint32_t> sigma{1};
    std::vector<std::uint32_t> prev{1}; // B(x)
    unsigned L = 0;
    unsigned m = 1;
    std::uint32_t b = 1;

    for (unsigned i = 0; i < p; ++i) {
        std::uint32_t delta = synd[i];
        for (unsigned j = 1; j <= L && j < sigma.size(); ++j)
            delta = GaloisField::add(delta,
                                     gf_.mul(sigma[j], synd[i - j]));
        if (delta == 0) {
            ++m;
            continue;
        }
        // candidate = sigma - (delta/b) * x^m * prev
        const std::uint32_t coef = gf_.div(delta, b);
        std::vector<std::uint32_t> cand = sigma;
        if (cand.size() < prev.size() + m)
            cand.resize(prev.size() + m, 0);
        for (std::size_t j = 0; j < prev.size(); ++j) {
            cand[j + m] = GaloisField::add(cand[j + m],
                                           gf_.mul(coef, prev[j]));
        }
        if (2 * L <= i) {
            prev = sigma;
            b = delta;
            L = i + 1 - L;
            m = 1;
        } else {
            ++m;
        }
        sigma = std::move(cand);
    }

    // Trim trailing zero coefficients.
    while (sigma.size() > 1 && sigma.back() == 0)
        sigma.pop_back();
    const unsigned degree = static_cast<unsigned>(sigma.size()) - 1;

    if (L > cap || degree != L) {
        res.status = EccStatus::Detected;
        return res;
    }

    // Chien search: error at position j iff sigma(alpha^-j) == 0.
    std::vector<unsigned> positions;
    for (unsigned j = 0; j < n_; ++j) {
        if (polyEval(gf_, sigma, gf_.alphaPow(-std::int64_t(j))) == 0)
            positions.push_back(j);
    }
    if (positions.size() != L) {
        // Locator does not split over the field: uncorrectable.
        res.status = EccStatus::Detected;
        return res;
    }

    // Forney: Omega(x) = S(x) * sigma(x) mod x^p, fcr = 1 so
    // e_j = Omega(Xj^-1) / sigma'(Xj^-1).
    std::vector<std::uint32_t> omega(p, 0);
    for (unsigned i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < sigma.size() && j <= i; ++j) {
            omega[i] = GaloisField::add(omega[i],
                                        gf_.mul(synd[i - j], sigma[j]));
        }
    }
    std::vector<std::uint32_t> sigma_deriv;
    for (std::size_t j = 1; j < sigma.size(); j += 2) {
        // d/dx x^j = j x^(j-1); in char 2 only odd j survive with coeff 1.
        sigma_deriv.resize(j, 0);
        sigma_deriv[j - 1] = sigma[j];
    }
    if (sigma_deriv.empty()) {
        res.status = EccStatus::Detected;
        return res;
    }

    for (unsigned j : positions) {
        const std::uint32_t xinv = gf_.alphaPow(-std::int64_t(j));
        const std::uint32_t denom = polyEval(gf_, sigma_deriv, xinv);
        if (denom == 0) {
            res.status = EccStatus::Detected;
            return res;
        }
        const std::uint32_t mag =
            gf_.div(polyEval(gf_, omega, xinv), denom);
        res.codeword[j] = GaloisField::add(res.codeword[j], mag);
    }

    // Paranoia recheck, as real controllers do before signalling CE.
    if (!isCodeword(res.codeword)) {
        res.codeword = received;
        res.status = EccStatus::Detected;
        return res;
    }
    res.status = EccStatus::Corrected;
    res.symbolsCorrected = L;
    return res;
}

} // namespace dve
