/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component takes an explicit seed so that a run is a pure
 * function of its configuration; wall-clock seeding is deliberately absent.
 */

#ifndef DVE_COMMON_RNG_HH
#define DVE_COMMON_RNG_HH

#include <cstdint>
#include <random>

#include "common/logging.hh"

namespace dve
{

/**
 * A thin deterministic wrapper around std::mt19937_64 with the handful of
 * draw shapes the simulator needs.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    next(std::uint64_t bound)
    {
        dve_assert(bound > 0, "Rng::next bound must be positive");
        return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(
            engine_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Geometric-ish run length with mean @p mean (>= 1). */
    std::uint64_t
    runLength(double mean)
    {
        dve_assert(mean >= 1.0, "run length mean must be >= 1");
        if (mean == 1.0)
            return 1;
        std::geometric_distribution<std::uint64_t> d(1.0 / mean);
        return 1 + d(engine_);
    }

    /** Derive an independent child stream (for per-thread generators). */
    Rng
    fork(std::uint64_t salt)
    {
        // splitmix-style mixing of a fresh draw with the salt
        std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL * (salt + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return Rng(z ^ (z >> 31));
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace dve

#endif // DVE_COMMON_RNG_HH
