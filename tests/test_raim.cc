/**
 * @file
 * Tests for the operational IBM RAIM (RAID-3) controller mode -- the
 * paper's premier reliability comparator (Sec. IV-B). RAIM survives a
 * full channel failure by striping data + XOR parity across five
 * channels, but every read gangs all five channels (its performance
 * cost) and everything sits behind one controller (its Achilles heel
 * versus Dvé).
 */

#include <gtest/gtest.h>

#include "coherence/engine.hh"
#include "mem/memory_controller.hh"

namespace dve
{
namespace
{

class RaimTest : public ::testing::Test
{
  protected:
    FaultRegistry faults;

    MemoryController
    make()
    {
        return MemoryController("raim", 0, DramConfig{},
                                Scheme::ChipkillSscDsd, MirrorMode::Raim,
                                &faults, 7);
    }
};

TEST_F(RaimTest, FiveChannelsConstructed)
{
    auto mc = make();
    EXPECT_EQ(mc.copies(), 5u);
    EXPECT_EQ(mc.mirrorMode(), MirrorMode::Raim);
}

TEST_F(RaimTest, WriteReadRoundTripAcrossStripe)
{
    auto mc = make();
    Tick t = 0;
    // Four consecutive lines land on the four data channels.
    for (unsigned i = 0; i < 4; ++i)
        t = mc.write(Addr(i) * lineBytes, 100 + i, t);
    for (unsigned i = 0; i < 4; ++i) {
        const auto r = mc.read(Addr(i) * lineBytes, t);
        EXPECT_EQ(r.value, 100u + i);
        EXPECT_FALSE(r.failed);
        t = r.readyAt;
    }
}

TEST_F(RaimTest, EveryReadGangsAllFiveChannels)
{
    auto mc = make();
    mc.write(0, 1, 0);
    const auto before0 = mc.dram(0).reads();
    const auto before4 = mc.dram(4).reads();
    mc.read(0, 1000000);
    // The 256 B ganged access touched every channel, parity included.
    EXPECT_EQ(mc.dram(0).reads(), before0 + 1);
    EXPECT_EQ(mc.dram(4).reads(), before4 + 1);
    for (unsigned c = 1; c < 4; ++c)
        EXPECT_GT(mc.dram(c).reads(), 0u);
}

TEST_F(RaimTest, SurvivesFullChannelFailure)
{
    auto mc = make();
    Tick t = 0;
    for (unsigned i = 0; i < 8; ++i)
        t = mc.write(Addr(i) * lineBytes, 0xC0DE + i, t);

    // Kill channel 2 outright (lines 2, 6, ... live there).
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.channel = 2;
    faults.inject(f);

    const auto r = mc.read(2 * lineBytes, t);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.status, EccStatus::Corrected);
    EXPECT_EQ(r.value, 0xC0DEu + 2);
    const auto r2 = mc.read(6 * lineBytes, r.readyAt);
    EXPECT_EQ(r2.value, 0xC0DEu + 6);
    EXPECT_GE(mc.correctedErrors(), 2u);
}

TEST_F(RaimTest, SurvivesChannelFailureOfUnwrittenStripeMates)
{
    auto mc = make();
    mc.write(lineBytes, 55, 0); // only line 1 written in its stripe
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.channel = 1;
    faults.inject(f);
    const auto r = mc.read(lineBytes, 1000000);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.value, 55u); // mates read as 0; parity covers them
}

TEST_F(RaimTest, ParityChannelFailureHarmlessForReads)
{
    auto mc = make();
    mc.write(0, 9, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.channel = 4; // the parity channel
    faults.inject(f);
    const auto r = mc.read(0, 1000000);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.value, 9u);
}

TEST_F(RaimTest, DoubleChannelFailureIsDue)
{
    auto mc = make();
    mc.write(0, 3, 0);
    for (unsigned ch : {0u, 1u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Channel;
        f.channel = ch;
        faults.inject(f);
    }
    const auto r = mc.read(0, 1000000);
    EXPECT_TRUE(r.failed);
}

TEST_F(RaimTest, SingleControllerIsTheAchillesHeel)
{
    // The paper's core argument: RAIM's five channels share one
    // controller, so a controller fault defeats the whole array --
    // while Dvé's replica sits behind an independent controller.
    auto mc = make();
    mc.write(0, 77, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Controller;
    faults.inject(f);
    EXPECT_TRUE(mc.read(0, 1000000).failed);
}

TEST_F(RaimTest, ChipFaultWithinChannelCorrectedByChipkillFirst)
{
    // Chipkill handles a single chip locally; RAID-3 is the second tier.
    auto mc = make();
    mc.write(0, 11, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.channel = 0;
    f.chip = 3;
    faults.inject(f);
    const auto r = mc.read(0, 1000000);
    EXPECT_EQ(r.status, EccStatus::Corrected);
    EXPECT_EQ(r.value, 11u);
}

TEST_F(RaimTest, RepairCuresTransientChannelGlitch)
{
    auto mc = make();
    mc.write(0, 21, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.channel = 0;
    f.transient = true;
    faults.inject(f);
    ASSERT_EQ(mc.read(0, 0).status, EccStatus::Corrected);
    const auto r = mc.repairAndVerify(0, 21, 1000000);
    EXPECT_EQ(r.status, EccStatus::Clean);
    EXPECT_EQ(faults.activeCount(), 0u);
}

TEST(RaimEngine, FullSystemRunsWithRaimMemory)
{
    // RAIM as the per-socket memory of the full coherence engine: runs
    // value-validated and is slower than plain memory (ganged reads).
    EngineConfig cfg;
    cfg.l1Bytes = 1024;
    cfg.llcBytes = 16 * 1024;

    CoherenceEngine plain(cfg);
    cfg.mirror = MirrorMode::Raim;
    CoherenceEngine raim(cfg);

    Rng rng(17);
    Tick tp = 0, tr = 0;
    for (int op = 0; op < 4000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(16));
        const Addr a = Addr(rng.next(16)) * pageBytes
                       + Addr(rng.next(8)) * lineBytes;
        const bool w = rng.chance(0.3);
        const std::uint64_t v = rng.engine()();
        tp = plain.access(c / 8, c % 8, a, w, v, tp).done;
        tr = raim.access(c / 8, c % 8, a, w, v, tr).done;
    }
    EXPECT_EQ(raim.sdcReadsObserved(), 0u);
    EXPECT_GT(tr, tp) << "ganged 256B accesses must cost time";
}

} // namespace
} // namespace dve
