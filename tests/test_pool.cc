/**
 * @file
 * Far-memory pool tier tests: deterministic replica placement
 * (PoolRemap), the two-tier degradation ladder (pool-node loss demotes
 * to local-ECC-only service, heal-back re-replicates onto a surviving
 * node), honest DUE accounting when the home copy fails too, and the
 * no-pool byte-identity gate (zero pool nodes emits zero pool stats).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/dve_engine.hh"
#include "mem/pool_remap.hh"

namespace dve
{
namespace
{

EngineConfig
smallEngine()
{
    EngineConfig cfg;
    cfg.llcBytes = 1024 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.scheme = Scheme::ChipkillSscDsd;
    return cfg;
}

DveConfig
poolConfig(unsigned nodes)
{
    DveConfig d;
    d.poolNodes = nodes;
    return d;
}

/** Push the cached line out so the next access hits DRAM again. */
void
flushLine(DveEngine &e, Addr addr, Tick &clock)
{
    const auto w =
        e.access(1, 0, addr, true, e.logicalValue(lineNum(addr)), clock);
    clock = w.done;
    for (unsigned i = 1; i <= 40; ++i) {
        const Addr a = addr + Addr(i) * 16384 * 64;
        if (lineNum(a) % 256 != lineNum(addr) % 256)
            continue;
        clock = e.access(1, 0, a, false, 0, clock).done;
    }
}

std::uint64_t
injectPoolOffline(FaultRegistry &reg, unsigned node)
{
    FaultDescriptor f;
    f.scope = FaultScope::PoolNodeOffline;
    f.socket = node;
    return reg.inject(f);
}

TEST(PoolRemap, SpreadIsAPureFunctionOfThePage)
{
    PoolRemap a(3), b(3);
    for (Addr page = 0; page < 512; ++page) {
        EXPECT_EQ(a.spreadNodeFor(page), b.spreadNodeFor(page));
        EXPECT_EQ(a.nodeFor(page), a.spreadNodeFor(page));
        EXPECT_LT(a.nodeFor(page), 3u);
    }
    // The hash spread actually uses every node (one node lost must not
    // take out all replicas).
    std::vector<unsigned> hits(3, 0);
    for (Addr page = 0; page < 512; ++page)
        ++hits[a.nodeFor(page)];
    for (unsigned n = 0; n < 3; ++n)
        EXPECT_GT(hits[n], 0u) << "node " << n << " never used";
}

TEST(PoolRemap, RetargetMovesToFirstReachableNodeDeterministically)
{
    PoolRemap r(4);
    const Addr page = 7;
    const unsigned cur = r.nodeFor(page);

    // Scan order is (cur+1, cur+2, ...) mod nodes: with only cur+2 up,
    // the page lands there.
    const unsigned expect = (cur + 2) % 4;
    const auto moved =
        r.retarget(page, [&](unsigned n) { return n == expect; });
    ASSERT_TRUE(moved.has_value());
    EXPECT_EQ(*moved, expect);
    EXPECT_EQ(r.nodeFor(page), expect);
    EXPECT_EQ(r.overrides(), 1u);

    // No node up: the page stays put and no override is installed.
    PoolRemap dead(4);
    EXPECT_FALSE(
        dead.retarget(page, [](unsigned) { return false; }).has_value());
    EXPECT_EQ(dead.nodeFor(page), dead.spreadNodeFor(page));
    EXPECT_EQ(dead.overrides(), 0u);

    // Clearing the override returns to the default spread.
    r.clearOverride(page);
    EXPECT_EQ(r.nodeFor(page), cur);
}

TEST(PoolRemap, PlacementIsIndependentOfRetargetOrder)
{
    // Iteration-order independence: retargeting a set of distinct pages
    // must yield the same final placement regardless of the order the
    // overrides were installed (the engine's repair queue drains in
    // arbitrary churn order).
    std::vector<Addr> pages;
    for (Addr p = 0; p < 64; ++p)
        pages.push_back(p * 3 + 1);

    PoolRemap fwd(5), rev(5);
    const auto up = [](unsigned n) { return n != 2; }; // node 2 down
    for (const Addr p : pages)
        fwd.retarget(p, up);
    std::vector<Addr> reversed(pages.rbegin(), pages.rend());
    for (const Addr p : reversed)
        rev.retarget(p, up);

    for (const Addr p : pages) {
        EXPECT_EQ(fwd.nodeFor(p), rev.nodeFor(p)) << "page " << p;
        EXPECT_NE(fwd.nodeFor(p), 2u);
    }
    EXPECT_EQ(fwd.overrides(), rev.overrides());
}

TEST(FarMemory, ReplicaTrafficLandsOnThePool)
{
    DveEngine e(smallEngine(), poolConfig(3));
    ASSERT_TRUE(e.poolActive());

    const Addr addr = 0;
    Tick clock = 0;
    clock = e.access(0, 0, addr, true, 42, clock).done;
    flushLine(e, addr, clock);

    // Replica-side reads are served from the far-memory node, counted
    // separately from socket-local replica reads.
    const auto r = e.access(1, 0, addr, false, 0, clock);
    EXPECT_EQ(r.value, 42u);
    EXPECT_EQ(r.outcome, ReadOutcome::Clean);
    EXPECT_GT(e.poolReplicaReads(), 0u);
    EXPECT_GT(e.poolReplicaWrites(), 0u);
}

TEST(FarMemory, NodeLossDemotesThenHealsBackToSurvivingNode)
{
    DveEngine e(smallEngine(), poolConfig(3));
    const Addr addr = 0;
    Tick clock = 0;
    clock = e.access(0, 0, addr, true, 42, clock).done;
    flushLine(e, addr, clock);

    const unsigned node = e.poolNodeOf(lineNum(addr));
    injectPoolOffline(e.faultRegistry(), node);

    // Demote: the replica-side read finds the pool path dead, fences the
    // line to local-ECC-only service and answers from the home copy --
    // clean data, no machine check, no silent corruption.
    const auto r1 = e.access(1, 0, addr, false, 0, clock);
    clock = r1.done;
    EXPECT_EQ(r1.value, 42u);
    EXPECT_EQ(r1.outcome, ReadOutcome::Clean);
    EXPECT_EQ(e.degradedLines(), 1u);
    EXPECT_EQ(e.machineCheckExceptions(), 0u);

    // Heal-back: after the repair backoff the maintenance pass moves the
    // page onto a surviving node and re-replicates it from home.
    clock += 10 * ticksPerUs;
    clock = e.runMaintenance(clock).finishedAt;
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_EQ(e.poolRetargets(), 1u);
    EXPECT_GT(e.reReplications(), 0u);
    const unsigned moved = e.poolNodeOf(lineNum(addr));
    EXPECT_NE(moved, node);

    // And the replica path serves again from the new node.
    const auto r2 = e.access(1, 0, addr, false, 0, clock);
    EXPECT_EQ(r2.value, 42u);
    EXPECT_EQ(r2.outcome, ReadOutcome::Clean);
}

TEST(FarMemory, PartitionDefersRepairThenReReplicatesInPlace)
{
    DveEngine e(smallEngine(), poolConfig(3));
    const Addr addr = 0;
    Tick clock = 0;
    clock = e.access(0, 0, addr, true, 7, clock).done;
    flushLine(e, addr, clock);

    FaultDescriptor part;
    part.scope = FaultScope::FabricPartition;
    const auto pid = e.faultRegistry().inject(part);
    ASSERT_NE(pid, 0u);

    const auto r1 = e.access(1, 0, addr, false, 0, clock);
    clock = r1.done;
    EXPECT_EQ(r1.value, 7u);
    EXPECT_EQ(r1.outcome, ReadOutcome::Clean);
    EXPECT_EQ(e.degradedLines(), 1u);

    // Under a full partition there is no surviving node to heal onto:
    // the repair defers without consuming a retry or retiring a frame.
    clock += 10 * ticksPerUs;
    clock = e.runMaintenance(clock).finishedAt;
    EXPECT_GT(e.repairDeferrals(), 0u);
    EXPECT_EQ(e.degradedLines(), 1u);
    EXPECT_EQ(e.poolRetargets(), 0u);
    EXPECT_EQ(e.retiredPages(), 0u);

    // The fabric heals: the deferred repair re-replicates in place (no
    // retarget needed -- the node itself never died).
    e.faultRegistry().clear(pid);
    clock += 10 * ticksPerUs;
    clock = e.runMaintenance(clock).finishedAt;
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_EQ(e.poolRetargets(), 0u);
    EXPECT_GT(e.reReplications(), 0u);

    const auto r2 = e.access(1, 0, addr, false, 0, clock);
    EXPECT_EQ(r2.value, 7u);
    EXPECT_EQ(r2.outcome, ReadOutcome::Clean);
}

TEST(FarMemory, HonestDueWhenHomeFailsWhileDemoted)
{
    DveEngine e(smallEngine(), poolConfig(3));
    const Addr addr = 0;
    Tick clock = 0;
    clock = e.access(0, 0, addr, true, 9, clock).done;
    flushLine(e, addr, clock);

    // Lose the pool node: the line demotes to home-copy-only service.
    injectPoolOffline(e.faultRegistry(), e.poolNodeOf(lineNum(addr)));
    clock = e.access(1, 0, addr, false, 0, clock).done;
    ASSERT_EQ(e.degradedLines(), 1u);
    flushLine(e, addr, clock);

    // Now the home controller fails too: both copies are gone. The read
    // must raise a machine check -- honest data loss, never silence.
    FaultDescriptor mc;
    mc.scope = FaultScope::Controller;
    mc.socket = 0;
    e.faultRegistry().inject(mc);
    const auto r = e.access(1, 0, addr, false, 0, clock);
    EXPECT_EQ(r.outcome, ReadOutcome::Due);
    EXPECT_GT(e.machineCheckExceptions(), 0u);
}

TEST(FarMemory, NoPoolMeansNoPoolStats)
{
    // The byte-identity gate: with zero pool nodes the engine must not
    // register any pool stat (pre-pool stat dumps stay byte-identical).
    DveEngine off(smallEngine(), DveConfig{});
    EXPECT_FALSE(off.poolActive());
    std::ostringstream so;
    off.dumpStats(so);
    EXPECT_EQ(so.str().find("pool"), std::string::npos);

    DveEngine on(smallEngine(), poolConfig(2));
    std::ostringstream son;
    on.dumpStats(son);
    EXPECT_NE(son.str().find("pool_replica_reads"), std::string::npos);
}

} // namespace
} // namespace dve
