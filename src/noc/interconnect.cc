#include "noc/interconnect.hh"

#include "common/logging.hh"

namespace dve
{

Interconnect::Interconnect(const NocConfig &cfg)
    : cfg_(cfg), stats_("noc")
{
    dve_assert(cfg_.sockets >= 1, "need at least one socket");
    dve_assert(cfg_.gatewayTile < cfg_.meshCols * cfg_.meshRows,
               "gateway tile outside mesh");
    meshes_.reserve(cfg_.sockets);
    for (unsigned s = 0; s < cfg_.sockets; ++s)
        meshes_.emplace_back(cfg_.meshCols, cfg_.meshRows);

    stats_.add("intra_messages", intraMsgs_);
    stats_.add("intra_hops", intraHops_);
    stats_.add("inter_socket_messages", interSocketMsgs_);
    stats_.add("inter_socket_bytes", interSocketBytes_);
    stats_.add("inter_socket_ctrl_messages", interSocketCtrlMsgs_);
    stats_.add("inter_socket_data_messages", interSocketDataMsgs_);
    stats_.add("dropped_messages", droppedMsgs_);
    stats_.add("failed_sends", failedSends_);
    stats_.add("delayed_messages", delayedMsgs_);
    stats_.add("hop_latency", hopLatency_);
}

void
Interconnect::attachFaults(const FaultRegistry *reg, std::uint64_t seed)
{
    faults_ = reg;
    lossyRng_ = Rng(seed);
}

bool
Interconnect::pathUp(unsigned a, unsigned b) const
{
    if (!faults_ || a == b)
        return true;
    return !faults_->linkDown(a, b);
}

Tick
Interconnect::latency(NodeId src, NodeId dst) const
{
    dve_assert(src.socket < cfg_.sockets && dst.socket < cfg_.sockets,
               "socket out of range");
    if (src.socket == dst.socket) {
        return meshes_[src.socket].hops(src.tile, dst.tile)
               * cfg_.hopLatency;
    }
    // src tile -> gateway, one inter-socket traversal, gateway -> dst tile.
    const Tick head =
        meshes_[src.socket].hops(src.tile, cfg_.gatewayTile)
        * cfg_.hopLatency;
    const Tick tail =
        meshes_[dst.socket].hops(cfg_.gatewayTile, dst.tile)
        * cfg_.hopLatency;
    return head + cfg_.interSocketLatency + tail;
}

Tick
Interconnect::send(NodeId src, NodeId dst, MsgClass cls)
{
    const Tick lat = latency(src, dst);
    if (src.socket == dst.socket) {
        ++pend_.intraMsgs;
        pend_.intraHops += meshes_[src.socket].traverse(src.tile, dst.tile);
    } else {
        meshes_[src.socket].traverse(src.tile, cfg_.gatewayTile);
        meshes_[dst.socket].traverse(cfg_.gatewayTile, dst.tile);
        ++pend_.interMsgs;
        pend_.interBytes += bytesFor(cls);
        if (cls == MsgClass::Data)
            ++pend_.interData;
        else
            ++pend_.interCtrl;
    }
    noteLatency(lat);
    return lat;
}

void
Interconnect::flushPending() const
{
    intraMsgs_ += pend_.intraMsgs;
    intraHops_ += pend_.intraHops;
    interSocketMsgs_ += pend_.interMsgs;
    interSocketBytes_ += pend_.interBytes;
    interSocketCtrlMsgs_ += pend_.interCtrl;
    interSocketDataMsgs_ += pend_.interData;
    for (unsigned i = 0; i < pend_.nLat; ++i)
        hopLatency_.record(pend_.lat[i]);
    pend_ = PendingTraffic{};
}

SendResult
Interconnect::trySend(NodeId src, NodeId dst, MsgClass cls)
{
    if (src.socket == dst.socket || !faults_)
        return {SendStatus::Ok, send(src, dst, cls)};
    // linkDown also covers an offline endpoint socket.
    if (faults_->linkDown(src.socket, dst.socket)) {
        ++failedSends_;
        return {SendStatus::LinkFailed, 0};
    }
    const FaultDescriptor *lossy =
        faults_->lossyLink(src.socket, dst.socket);
    if (lossy && lossyRng_.chance(lossy->dropProb)) {
        ++droppedMsgs_;
        return {SendStatus::Dropped, 0};
    }
    Tick lat = send(src, dst, cls);
    if (lossy && lossy->delayTicks > 0) {
        lat += lossy->delayTicks;
        ++delayedMsgs_;
    }
    return {SendStatus::Ok, lat};
}

bool
Interconnect::poolPathUp(unsigned node) const
{
    if (!faults_)
        return true;
    return !faults_->fabricPartition() && !faults_->poolNodeOffline(node);
}

SendResult
Interconnect::trySendPool(NodeId src, unsigned pool_node, MsgClass cls)
{
    if (!poolPathUp(pool_node)) {
        ++failedSends_;
        return {SendStatus::LinkFailed, 0};
    }
    const Tick lat = meshes_[src.socket].hops(src.tile, cfg_.gatewayTile)
                         * cfg_.hopLatency
                     + cfg_.poolLinkLatency;
    meshes_[src.socket].traverse(src.tile, cfg_.gatewayTile);
    ++pend_.interMsgs;
    pend_.interBytes += bytesFor(cls);
    if (cls == MsgClass::Data)
        ++pend_.interData;
    else
        ++pend_.interCtrl;
    noteLatency(lat);
    return {SendStatus::Ok, lat};
}

void
Interconnect::resetTraffic()
{
    pend_ = PendingTraffic{};
    droppedMsgs_.reset();
    failedSends_.reset();
    delayedMsgs_.reset();
    intraMsgs_.reset();
    intraHops_.reset();
    interSocketMsgs_.reset();
    interSocketBytes_.reset();
    interSocketCtrlMsgs_.reset();
    interSocketDataMsgs_.reset();
    hopLatency_.reset();
    for (auto &m : meshes_)
        m.resetTraffic();
}

} // namespace dve
