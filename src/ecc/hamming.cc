#include "ecc/hamming.hh"

#include <array>
#include <bit>

#include "common/logging.hh"

namespace dve
{

namespace
{

/**
 * Standard Hamming layout: codeword positions 1..71, where positions that
 * are powers of two (1,2,4,8,16,32,64) hold the 7 check bits and the other
 * 64 positions hold data bits in ascending order. An eighth, overall parity
 * bit extends the code to SEC-DED.
 */
constexpr std::array<std::uint8_t, 7> checkPositions =
    {1, 2, 4, 8, 16, 32, 64};

constexpr bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Position (1-based) of data bit i. */
constexpr std::array<std::uint8_t, 64>
buildDataPositions()
{
    std::array<std::uint8_t, 64> pos{};
    unsigned idx = 0;
    for (unsigned p = 1; idx < 64; ++p) {
        if (!isPowerOfTwo(p))
            pos[idx++] = static_cast<std::uint8_t>(p);
    }
    return pos;
}

constexpr std::array<std::uint8_t, 64> dataPositions = buildDataPositions();

/** Bit of @p data at index i. */
constexpr unsigned
dataBit(std::uint64_t data, unsigned i)
{
    return static_cast<unsigned>((data >> i) & 1);
}

} // namespace

HammingSecDed::Codeword
HammingSecDed::encode(std::uint64_t data)
{
    Codeword cw;
    cw.data = data;

    std::uint8_t check = 0;
    for (unsigned c = 0; c < 7; ++c) {
        unsigned parity = 0;
        for (unsigned i = 0; i < 64; ++i) {
            if (dataPositions[i] & checkPositions[c])
                parity ^= dataBit(data, i);
        }
        check |= static_cast<std::uint8_t>(parity << c);
    }
    // Overall parity (bit 7 of check) covers data + the 7 check bits.
    unsigned overall = std::popcount(data) & 1;
    overall ^= std::popcount(static_cast<unsigned>(check & 0x7F)) & 1;
    check |= static_cast<std::uint8_t>(overall << 7);
    cw.check = check;
    return cw;
}

std::uint8_t
HammingSecDed::syndromeOf(const Codeword &cw)
{
    // Syndrome = XOR of positions whose covered parities mismatch.
    const Codeword expect = encode(cw.data);
    std::uint8_t synd = 0;
    for (unsigned c = 0; c < 7; ++c) {
        const unsigned got = (cw.check >> c) & 1;
        const unsigned want = (expect.check >> c) & 1;
        if (got != want)
            synd |= checkPositions[c];
    }
    return synd;
}

std::uint8_t
HammingSecDed::parityOf(std::uint64_t data, std::uint8_t check)
{
    unsigned p = std::popcount(data) & 1;
    p ^= std::popcount(static_cast<unsigned>(check)) & 1;
    return static_cast<std::uint8_t>(p);
}

HammingSecDed::Result
HammingSecDed::decode(const Codeword &received)
{
    Result res;
    res.codeword = received;

    const std::uint8_t synd = syndromeOf(received);
    // Overall parity of the received word must be even.
    const bool parity_bad = parityOf(received.data, received.check) != 0;

    if (synd == 0 && !parity_bad) {
        res.status = EccStatus::Clean;
        return res;
    }
    if (synd == 0 && parity_bad) {
        // The overall-parity bit itself flipped.
        res.codeword.check ^= 0x80;
        res.status = EccStatus::Corrected;
        return res;
    }
    if (!parity_bad) {
        // Nonzero syndrome with even parity: double-bit error.
        res.status = EccStatus::Detected;
        return res;
    }

    // Single-bit error at position synd.
    if (isPowerOfTwo(synd)) {
        for (unsigned c = 0; c < 7; ++c) {
            if (checkPositions[c] == synd)
                res.codeword.check ^= static_cast<std::uint8_t>(1u << c);
        }
        res.status = EccStatus::Corrected;
        return res;
    }
    for (unsigned i = 0; i < 64; ++i) {
        if (dataPositions[i] == synd) {
            res.codeword.data ^= (std::uint64_t(1) << i);
            res.status = EccStatus::Corrected;
            return res;
        }
    }
    // Syndrome points outside the codeword: uncorrectable.
    res.status = EccStatus::Detected;
    return res;
}

} // namespace dve
