/**
 * @file
 * Observability layer: log-bucketed histograms, the event tracer, and
 * the machine-readable stats export -- including the determinism
 * properties the parallel harnesses depend on (bucket-wise merge,
 * tick-ordered trace export, job-count-invariant JSON).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "bench/bench_util.hh"
#include "common/histogram.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/tracer.hh"
#include "sys/system.hh"

namespace dve
{
namespace
{

// The named regression: an implicit Counter -> uint64 conversion let
// "counter - 1" style arithmetic compile silently. Explicit conversion
// keeps deliberate casts working while rejecting implicit ones.
static_assert(!std::is_convertible_v<Counter, std::uint64_t>,
              "Counter must not convert to uint64_t implicitly");
static_assert(std::is_constructible_v<std::uint64_t, Counter>,
              "explicit Counter -> uint64_t casts must keep working");

TEST(Histogram, BucketBoundariesAtOctaveEdges)
{
    // Below 2*subBuckets every value is its own bucket.
    for (std::uint64_t v = 0; v < 32; ++v)
        EXPECT_EQ(Histogram::bucketIndex(v), v) << "v=" << v;
    // First coalescing octave: [32, 64) maps to 16 two-wide buckets.
    EXPECT_EQ(Histogram::bucketIndex(32), 32u);
    EXPECT_EQ(Histogram::bucketIndex(33), 32u);
    EXPECT_EQ(Histogram::bucketIndex(34), 33u);
    EXPECT_EQ(Histogram::bucketIndex(63), 47u);
    EXPECT_EQ(Histogram::bucketIndex(64), 48u);
    // Octave starts land on multiples of subBuckets forever after.
    EXPECT_EQ(Histogram::bucketIndex(128), 64u);
    EXPECT_EQ(Histogram::bucketIndex(1u << 20), 16u * 17);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t(0)),
              Histogram::numBuckets - 1);
}

TEST(Histogram, BucketFloorRoundTrips)
{
    // floor(index(v)) <= v, and the floor maps back to the same bucket.
    const std::vector<std::uint64_t> samples = {
        0,  1,   15,        16,        17,         31,       32,
        33, 100, 1000,      4096,      4097,       12345678, 1ull << 40,
        (1ull << 40) + 999, ~std::uint64_t(0) >> 1, ~std::uint64_t(0)};
    for (const std::uint64_t v : samples) {
        const unsigned idx = Histogram::bucketIndex(v);
        const std::uint64_t floor = Histogram::bucketFloor(idx);
        EXPECT_LE(floor, v) << "v=" << v;
        EXPECT_EQ(Histogram::bucketIndex(floor), idx) << "v=" << v;
    }
    // Every bucket's floor round-trips to its own index.
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketFloor(i)), i);
}

TEST(Histogram, PercentilesAreBucketFloors)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // Values up to 31 are exact; above that percentiles report the
    // floor of the containing bucket (<= 1/16 relative error).
    EXPECT_EQ(h.percentile(0), 1u);
    EXPECT_EQ(h.percentile(25), 25u);
    EXPECT_EQ(h.percentile(50), 50u);
    EXPECT_EQ(h.percentile(99), 96u); // 99 lives in bucket [96, 100)
    EXPECT_EQ(h.percentile(100), 100u);

    Histogram empty;
    EXPECT_EQ(empty.percentile(50), 0u);
    EXPECT_EQ(digestOf(empty).max, 0u);
}

TEST(Histogram, SingleSamplePercentilesReturnTheSample)
{
    // The named regression: with one sample, rank computation for p0
    // truncated to 0 and every percentile read as 0. All percentiles of
    // a single-sample histogram must report that sample's bucket floor
    // -- including values whose bucket floor is itself nonzero.
    for (const std::uint64_t v : {1ull, 31ull, 1000ull, 1ull << 40}) {
        Histogram h;
        h.record(v);
        const std::uint64_t floor =
            Histogram::bucketFloor(Histogram::bucketIndex(v));
        for (const unsigned pct : {0u, 1u, 50u, 99u, 100u})
            EXPECT_EQ(h.percentile(pct), floor)
                << "v=" << v << " pct=" << pct;
    }

    // A sample of 0 is a real observation, not "empty": count
    // distinguishes the two even though the percentiles agree.
    Histogram zero;
    zero.record(0);
    EXPECT_EQ(zero.count(), 1u);
    EXPECT_EQ(zero.percentile(0), 0u);
    EXPECT_EQ(zero.percentile(100), 0u);
}

TEST(Histogram, ExtremePercentilesAreOccupiedBucketFloors)
{
    // p0 is the lowest occupied bucket's floor and p100 the highest's,
    // never 0-because-rank-underflowed.
    Histogram h;
    h.record(500);
    h.record(70000);
    EXPECT_EQ(h.percentile(0), Histogram::bucketFloor(
                                   Histogram::bucketIndex(500)));
    EXPECT_EQ(h.percentile(100), Histogram::bucketFloor(
                                     Histogram::bucketIndex(70000)));
    // Percentiles are monotone in pct.
    std::uint64_t prev = 0;
    for (unsigned pct = 0; pct <= 100; ++pct) {
        EXPECT_GE(h.percentile(pct), prev) << "pct=" << pct;
        prev = h.percentile(pct);
    }
}

TEST(Histogram, MergeMatchesCombinedRecording)
{
    Histogram a, b, combined;
    for (std::uint64_t v = 0; v < 500; v += 3) {
        a.record(v * v);
        combined.record(v * v);
    }
    for (std::uint64_t v = 1; v < 300; v += 7) {
        b.record(v * 1000);
        combined.record(v * 1000);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        EXPECT_EQ(a.bucketCount(i), combined.bucketCount(i));
    EXPECT_EQ(a.percentile(95), combined.percentile(95));
}

TEST(Histogram, DiffIsTheRoiDelta)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 100; ++v)
        h.record(7); // warmup noise
    const Histogram snap = h;
    h.record(1000);
    h.record(2000);
    h.record(3000);
    const Histogram roi = h.diff(snap);
    EXPECT_EQ(roi.count(), 3u);
    EXPECT_EQ(roi.sum(), 6000u);
    EXPECT_EQ(roi.percentile(0), Histogram::bucketFloor(
                                     Histogram::bucketIndex(1000)));
    EXPECT_EQ(roi.percentile(100), Histogram::bucketFloor(
                                       Histogram::bucketIndex(3000)));
}

TEST(Stats, HistogramRegistrationAndLookup)
{
    Counter c;
    Histogram h;
    h.record(42);
    StatGroup g("grp");
    g.add("ops", c);
    g.add("lat", h);

    ++c;
    EXPECT_TRUE(g.has("lat"));
    EXPECT_DOUBLE_EQ(g.get("ops"), 1.0);
    // Scalars come out of get(); histograms only via histogram().
    EXPECT_THROW(g.get("lat"), std::logic_error);
    ASSERT_NE(g.histogram("lat"), nullptr);
    EXPECT_EQ(g.histogram("lat")->count(), 1u);
    EXPECT_EQ(g.histogram("ops"), nullptr);
    EXPECT_EQ(g.histogram("nope"), nullptr);

    // A snapshot carries scalars only (it feeds ROI delta arithmetic).
    const auto snap = g.snapshot();
    EXPECT_EQ(snap.count("ops"), 1u);
    EXPECT_EQ(snap.count("lat"), 0u);

    // The dump expands the histogram into digest lines, in
    // registration order.
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("grp.ops 1"), std::string::npos);
    EXPECT_NE(out.find("grp.lat_count 1"), std::string::npos);
    EXPECT_NE(out.find("grp.lat_p99 42"), std::string::npos);
    EXPECT_LT(out.find("grp.ops"), out.find("grp.lat_count"));
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    EventTracer t; // capacity 0
    EXPECT_FALSE(t.enabled());
    t.record({100, 5, TraceKind::Request, TraceComp::Core, 0, 1, 2});
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingEvictsOldestAndCountsDrops)
{
    EventTracer t(4);
    ASSERT_TRUE(t.enabled());
    for (std::uint64_t i = 0; i < 6; ++i)
        t.record({i * 10, 0, TraceKind::Request, TraceComp::Core, 0, i,
                  0});
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 2u);
    const auto recs = t.ordered();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs.front().a, 2u); // two oldest evicted
    EXPECT_EQ(recs.back().a, 5u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, ExportIsDeterministicAndTickOrdered)
{
    const auto build = [] {
        EventTracer t(16);
        // Emit out of tick order, with a tie at t=500.
        t.record({500, 0, TraceKind::FaultArrive, TraceComp::Fault, 1,
                  11, 0});
        t.record({100, 20, TraceKind::Request, TraceComp::Core, 0, 7,
                  0});
        t.record({500, 0, TraceKind::Divert, TraceComp::Dve, 1, 22, 0});
        t.record({300, 0, TraceKind::EpochSwitch, TraceComp::Dve, 0, 1,
                  3});
        return t;
    };
    std::ostringstream a, b;
    build().exportChromeTrace(a);
    build().exportChromeTrace(b);
    EXPECT_EQ(a.str(), b.str());

    const std::string out = a.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    // Sorted by tick; the t=500 tie keeps emission order
    // (fault-arrive before divert).
    const auto p_req = out.find("\"request\"");
    const auto p_epoch = out.find("\"epoch-switch\"");
    const auto p_fault = out.find("\"fault-arrive\"");
    const auto p_divert = out.find("\"divert\"");
    ASSERT_NE(p_req, std::string::npos);
    ASSERT_NE(p_divert, std::string::npos);
    EXPECT_LT(p_req, p_epoch);
    EXPECT_LT(p_epoch, p_fault);
    EXPECT_LT(p_fault, p_divert);
}

TEST(Observability, SameSeedRunsExportIdenticalTraces)
{
    const WorkloadProfile &wl = workloadByName("xsbench");
    const auto once = [&wl] {
        SystemConfig cfg;
        cfg.scheme = SchemeKind::DveDeny;
        cfg.engine.traceCapacity = 4096;
        System sys(cfg);
        return sys.run(wl, 0.02);
    };
    const RunResult r1 = once();
    const RunResult r2 = once();
    ASSERT_FALSE(r1.traceJson.empty());
    EXPECT_EQ(r1.traceJson, r2.traceJson);
    EXPECT_EQ(r1.toJson(), r2.toJson());

    // ROI latency digests are populated and ordered.
    EXPECT_GT(r1.reqLatency.count, 0u);
    EXPECT_LE(r1.reqLatency.p50, r1.reqLatency.p99);
    EXPECT_LE(r1.reqLatency.p99, r1.reqLatency.max);
    EXPECT_GT(r1.hopLatency.count, 0u);
    EXPECT_GT(r1.memReadLatency.count, 0u);
}

TEST(Observability, UntracedRunsCarryNoTraceJson)
{
    const WorkloadProfile &wl = workloadByName("xsbench");
    SystemConfig cfg;
    cfg.scheme = SchemeKind::BaselineNuma;
    System sys(cfg);
    const RunResult r = sys.run(wl, 0.02);
    EXPECT_TRUE(r.traceJson.empty());
    EXPECT_GT(r.reqLatency.count, 0u);
}

TEST(Observability, BenchJsonIsJobCountInvariant)
{
    // The same four sweep points, fanned out serially and over four
    // workers: the exported document must be byte-identical (results
    // merge by point index; histograms merge bucket-wise).
    const auto point = [](std::size_t p) {
        const WorkloadProfile &wl =
            workloadByName(p % 2 ? "xsbench" : "graph500");
        return bench::runScheme(p / 2 ? SchemeKind::DveDeny
                                      : SchemeKind::BaselineNuma,
                                wl, 0.02);
    };
    const auto serial = parallelMap(4, point, 1);
    const auto fanned = parallelMap(4, point, 4);
    EXPECT_EQ(bench::runsToJson("probe", serial),
              bench::runsToJson("probe", fanned));
    EXPECT_NE(bench::runsToJson("probe", serial).find("\"p99\""),
              std::string::npos);
}

} // namespace
} // namespace dve
