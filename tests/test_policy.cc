/**
 * @file
 * Tests for the on-demand replication policy: epoch-boundary decision
 * batches, budget accounting (global, per-node, mid-epoch retune),
 * deterministic ordering, heat decay, and the DveEngine wiring --
 * promotion through the timed repair path, demotion deferral while the
 * page still has seeding copies in the repair queue, and the disarmed
 * byte-identity contract. Also pins the fuzz scenario codec's policy
 * headers and `step b` budget retunes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dve_engine.hh"
#include "fuzz/generator.hh"
#include "fuzz/runner.hh"
#include "fuzz/scenario.hh"
#include "policy/replication_policy.hh"

namespace dve
{
namespace
{

PolicyConfig
quickPolicy(std::uint64_t epoch_ops = 4, std::uint32_t threshold = 2)
{
    PolicyConfig p;
    p.enabled = true;
    p.epochOps = epoch_ops;
    p.promoteThreshold = threshold;
    return p;
}

/** Everything on one node: the global budget is the only constraint. */
const ReplicationPolicy::NodeOf oneNode = [](Addr) { return 0u; };

/** Page parity picks the node: exercises the per-node budget. */
const ReplicationPolicy::NodeOf parityNode = [](Addr page) {
    return static_cast<unsigned>(page % 2);
};

TEST(Policy, EpochBoundaryFiresOnExactTick)
{
    ReplicationPolicy pol(quickPolicy(4));
    EXPECT_FALSE(pol.observe(1));
    EXPECT_FALSE(pol.observe(1));
    EXPECT_FALSE(pol.observe(2));
    EXPECT_TRUE(pol.observe(2)); // 4th access closes the epoch
    (void)pol.evaluate(oneNode);
    EXPECT_EQ(pol.epochsCompleted(), 1u);
    // The counter restarts: the very next access is op 1 of epoch 2.
    EXPECT_FALSE(pol.observe(1));
}

TEST(Policy, PromotionAtBoundaryHottestFirstPageTieBreak)
{
    ReplicationPolicy pol(quickPolicy(7));
    // Page 9 is hottest; pages 3 and 5 tie and must resolve by id.
    pol.observe(9);
    pol.observe(9);
    pol.observe(9);
    pol.observe(5);
    pol.observe(5);
    pol.observe(3);
    EXPECT_TRUE(pol.observe(3));
    const auto d = pol.evaluate(oneNode);
    EXPECT_TRUE(d.demote.empty());
    ASSERT_EQ(d.promote.size(), 3u);
    EXPECT_EQ(d.promote[0], 9u); // heat 3: hottest first
    EXPECT_EQ(d.promote[1], 3u); // tie at heat 2: lower page id first
    EXPECT_EQ(d.promote[2], 5u);
}

TEST(Policy, BudgetOverflowShedsColdestFirstAndMakesRoom)
{
    ReplicationPolicy pol(quickPolicy(4, 2));
    for (const Addr p : {1, 2, 3, 4})
        pol.notePromoted(p);
    EXPECT_EQ(pol.replicatedPages(), 4u);
    // Operator reclaims capacity mid-epoch; the policy reacts at the
    // next boundary.
    pol.setGlobalBudget(2);
    pol.observe(9);
    pol.observe(9);
    pol.observe(9);
    EXPECT_TRUE(pol.observe(9));
    const auto d = pol.evaluate(oneNode);
    // Two pages over budget shed coldest-first (all heat 0 -> page-id
    // order), and page 9's promotion demotes one more to make room.
    ASSERT_EQ(d.demote.size(), 3u);
    EXPECT_EQ(d.demote[0], 1u);
    EXPECT_EQ(d.demote[1], 2u);
    EXPECT_EQ(d.demote[2], 3u);
    ASSERT_EQ(d.promote.size(), 1u);
    EXPECT_EQ(d.promote[0], 9u);
}

TEST(Policy, BudgetZeroMidEpochDemotesAllAndBlocksPromotion)
{
    ReplicationPolicy pol(quickPolicy(4, 2));
    pol.notePromoted(1);
    pol.notePromoted(2);
    pol.setGlobalBudget(0);
    pol.observe(7);
    pol.observe(7);
    pol.observe(7);
    EXPECT_TRUE(pol.observe(7));
    EXPECT_FALSE(pol.canPromote(7, oneNode));
    const auto d = pol.evaluate(oneNode);
    ASSERT_EQ(d.demote.size(), 2u);
    EXPECT_EQ(d.demote[0], 1u);
    EXPECT_EQ(d.demote[1], 2u);
    EXPECT_TRUE(d.promote.empty());
}

TEST(Policy, PerNodeBudgetCapsPlacement)
{
    PolicyConfig cfg = quickPolicy(8, 2);
    cfg.nodeBudget = 1;
    ReplicationPolicy pol(cfg);
    pol.notePromoted(2); // node 0 is now full
    for (int i = 0; i < 4; ++i)
        pol.observe(4); // node 0 candidate
    for (int i = 0; i < 3; ++i)
        pol.observe(5); // node 1 candidate
    EXPECT_TRUE(pol.observe(5));
    EXPECT_FALSE(pol.canPromote(4, parityNode));
    EXPECT_TRUE(pol.canPromote(5, parityNode));
    const auto d = pol.evaluate(parityNode);
    // Page 4 is hotter but its node is full; page 5 lands on node 1.
    ASSERT_EQ(d.promote.size(), 1u);
    EXPECT_EQ(d.promote[0], 5u);
    EXPECT_TRUE(d.demote.empty());
}

TEST(Policy, MakeRoomNeverSwapsEqualHeatPages)
{
    PolicyConfig cfg = quickPolicy(4, 2);
    cfg.globalBudget = 1;
    ReplicationPolicy pol(cfg);
    pol.notePromoted(10);
    // Pages 10 and 20 are equally hot: swapping them would churn
    // forever, so the batch must be empty.
    pol.observe(10);
    pol.observe(20);
    pol.observe(10);
    EXPECT_TRUE(pol.observe(20));
    const auto d = pol.evaluate(oneNode);
    EXPECT_TRUE(d.demote.empty());
    EXPECT_TRUE(d.promote.empty());
}

TEST(Policy, HeatDecayTurnsStaleReplicasIntoVictims)
{
    PolicyConfig cfg = quickPolicy(2, 2);
    cfg.globalBudget = 1;
    ReplicationPolicy pol(cfg);
    // Epoch 1: page 1 earns the only slot.
    pol.observe(1);
    EXPECT_TRUE(pol.observe(1));
    auto d = pol.evaluate(oneNode);
    ASSERT_EQ(d.promote.size(), 1u);
    EXPECT_EQ(d.promote[0], 1u);
    pol.notePromoted(1);
    // Epoch 2: page 1 goes silent (heat decays 2 -> 1) while page 2
    // heats to 2, so the stale replica is evicted for the hotter page.
    pol.observe(2);
    EXPECT_TRUE(pol.observe(2));
    d = pol.evaluate(oneNode);
    ASSERT_EQ(d.demote.size(), 1u);
    EXPECT_EQ(d.demote[0], 1u);
    ASSERT_EQ(d.promote.size(), 1u);
    EXPECT_EQ(d.promote[0], 2u);
}

TEST(Policy, IdenticalStreamsMakeIdenticalDecisions)
{
    PolicyConfig cfg = quickPolicy(8, 2);
    cfg.globalBudget = 3;
    ReplicationPolicy a(cfg), b(cfg);
    const auto drive = [](ReplicationPolicy &pol) {
        std::vector<ReplicationPolicy::Decision> out;
        for (std::uint64_t i = 0; i < 64; ++i) {
            // Deterministic pseudo-stream with shifting hot pages.
            const Addr page = (i * 7 + i / 16) % 12;
            if (pol.observe(page)) {
                auto d = pol.evaluate(parityNode);
                for (const Addr p : d.promote)
                    pol.notePromoted(p);
                for (const Addr p : d.demote)
                    pol.noteDemoted(p);
                out.push_back(std::move(d));
            }
        }
        return out;
    };
    const auto da = drive(a);
    const auto db = drive(b);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da[i].promote, db[i].promote);
        EXPECT_EQ(da[i].demote, db[i].demote);
    }
}

// --- DveEngine wiring -------------------------------------------------

EngineConfig
missyConfig()
{
    EngineConfig cfg;
    cfg.dram = DramConfig::ddr4Replicated();
    // Caches far smaller than a page's 64 lines so every access in the
    // drive loop reaches serviceLlcMiss -- the policy's observation
    // point.
    cfg.l1Bytes = 1024;
    cfg.llcBytes = 2 * 1024;
    return cfg;
}

DveConfig
armedConfig()
{
    DveConfig d;
    d.protocol = DveProtocol::Deny;
    d.replicateAll = false;
    d.policy.enabled = true;
    d.policy.epochOps = 8;
    d.policy.promoteThreshold = 2;
    return d;
}

/** Write @p ops lines of @p page starting at @p line_offset. Distinct
 *  offsets per call keep every access an LLC miss (the policy's
 *  observation point) even when earlier lines are still cached. */
Tick
drivePage(DveEngine &e, Addr page, unsigned ops, Tick t,
          unsigned line_offset = 0)
{
    const unsigned lines = pageBytes / lineBytes;
    for (unsigned i = 0; i < ops; ++i) {
        const Addr addr = page * pageBytes
                          + Addr((line_offset + i) % lines) * lineBytes;
        t = e.access(0, 0, addr, true, i + 1, t).done;
    }
    return t;
}

/** Maintenance until the pending promotion heals (bounded). */
Tick
healPromotions(DveEngine &e, Tick t)
{
    for (int i = 0; i < 16 && e.policyPromotionLag().count() == 0; ++i) {
        const auto rep = e.runMaintenance(t);
        t = rep.finishedAt + 500 * ticksPerUs;
    }
    return t;
}

TEST(PolicyEngine, DisarmedEngineHasNoPolicyStats)
{
    DveConfig d;
    d.protocol = DveProtocol::Deny;
    DveEngine e(missyConfig(), d);
    EXPECT_FALSE(e.policyActive());
    EXPECT_FALSE(e.dveStats().has("policy_epochs"));
    EXPECT_FALSE(e.dveStats().has("policy_promotions"));
    Tick t = drivePage(e, 2, 16, 0);
    (void)e.runMaintenance(t);
    EXPECT_EQ(e.policyEpochs(), 0u);
}

TEST(PolicyEngine, PromotesHotPageThroughRepairPath)
{
    DveEngine e(missyConfig(), armedConfig());
    EXPECT_TRUE(e.policyActive());
    EXPECT_TRUE(e.dveStats().has("policy_promotions"));

    Tick t = drivePage(e, 2, 8, 0); // exactly one epoch of misses
    EXPECT_EQ(e.policyEpochs(), 1u);
    EXPECT_GE(e.policyPromotions(), 1u);
    EXPECT_GE(e.replicaMap().mappedPages(), 1u);
    // The seeding copy rides the repair queue: no lag scored until
    // maintenance heals the page.
    EXPECT_EQ(e.policyPromotionLag().count(), 0u);

    t = healPromotions(e, t);
    EXPECT_GE(e.policyPromotionLag().count(), 1u);
}

TEST(PolicyEngine, DemotionDefersWhileSeedingThenCompletes)
{
    DveEngine e(missyConfig(), armedConfig());
    Tick t = drivePage(e, 2, 8, 0);
    ASSERT_GE(e.policyPromotions(), 1u);
    ASSERT_GE(e.replicaMap().mappedPages(), 1u);

    // Capacity crunch lands while the promotion's seeding copies are
    // still in the repair queue: the demotion must defer (erasing the
    // degraded records would orphan corrupt replica cells as future
    // unexplained DUEs), not race the re-replication.
    e.setPolicyGlobalBudget(0);
    t = drivePage(e, 2, 8, t, 8); // next epoch boundary: demote attempt
    EXPECT_GE(e.policyDemotionsDeferred(), 1u);
    EXPECT_EQ(e.policyDemotions(), 0u);
    EXPECT_GE(e.replicaMap().mappedPages(), 1u); // still mapped

    // Heal the seeding copies, then the next boundary demotes for
    // real: dirty replica lines write back and the mapping tears down.
    // Fresh lines again so the epoch actually ticks over.
    t = healPromotions(e, t);
    t = drivePage(e, 2, 8, t, 16);
    EXPECT_GE(e.policyDemotions(), 1u);
    EXPECT_EQ(e.replicaMap().mappedPages(), 0u);
    EXPECT_GE(e.policyDemotionWritebacks(), 1u);
    EXPECT_GE(e.policyDemotionWbWait().count(), 1u);
}

// --- Fuzz codec + generator coverage ----------------------------------

TEST(PolicyFuzz, ScenarioRoundTripsPolicyHeadersAndBudgetSteps)
{
    FuzzScenario sc;
    sc.policyBudget = 4;
    sc.policyNodeBudget = 2;
    sc.policyEpochOps = 32;
    FuzzStep b;
    b.op = FuzzOp::Budget;
    b.value = 2;
    sc.steps.push_back(b);

    const std::string text = sc.serialize();
    EXPECT_NE(text.find("policy-budget 4"), std::string::npos);
    EXPECT_NE(text.find("policy-node-budget 2"), std::string::npos);
    EXPECT_NE(text.find("policy-epoch-ops 32"), std::string::npos);
    EXPECT_NE(text.find("step b 2"), std::string::npos);

    std::string err;
    const auto parsed = FuzzScenario::parse(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->policyBudget, 4u);
    EXPECT_EQ(parsed->policyNodeBudget, 2u);
    EXPECT_EQ(parsed->policyEpochOps, 32u);
    ASSERT_EQ(parsed->steps.size(), 1u);
    EXPECT_EQ(parsed->steps[0].op, FuzzOp::Budget);
    EXPECT_EQ(parsed->steps[0].value, 2u);
    EXPECT_EQ(parsed->serialize(), text);

    // Disarmed scenarios serialize no policy keys at all, keeping
    // pre-policy corpus files byte-identical through round trips.
    EXPECT_EQ(FuzzScenario().serialize().find("policy"),
              std::string::npos);
}

TEST(PolicyFuzz, GeneratedPolicyScenarioRunsDeterministically)
{
    GeneratorConfig gc;
    gc.seed = 7;
    gc.ops = 200;
    gc.footprintPages = 16;
    gc.policyMode = true;
    const FuzzScenario sc = generateScenario(gc);
    EXPECT_GT(sc.policyBudget, 0u);
    bool saw_budget = false;
    for (const auto &st : sc.steps)
        saw_budget |= st.op == FuzzOp::Budget;
    EXPECT_TRUE(saw_budget);

    FuzzRunOptions opt;
    const auto r1 = runScenario(sc, opt);
    const auto r2 = runScenario(sc, opt);
    EXPECT_FALSE(r1.violated);
    EXPECT_EQ(r1.digest, r2.digest);
    EXPECT_EQ(r1.sdc, 0u);
}

} // namespace
} // namespace dve
