/**
 * @file
 * Generic set-associative cache array with true-LRU replacement.
 *
 * The array stores tags plus caller-defined per-line metadata; protocol
 * logic lives in the coherence engine, keeping this container reusable for
 * L1s, LLCs and the on-chip replica-directory cache (which the paper
 * configures fully associative: sets = 1).
 */

#ifndef DVE_CACHE_SA_CACHE_HH
#define DVE_CACHE_SA_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace dve
{

/**
 * @tparam EntryT caller metadata attached to each resident line.
 *
 * Lines are identified by line number (address >> 6). The cache maps a
 * line to a set with a simple modulo; ways within a set use true LRU
 * driven by a monotonic access stamp.
 */
template <typename EntryT>
class SetAssocCache
{
  public:
    /** A resident line: its number plus caller metadata. */
    struct Line
    {
        Addr lineNum = 0;
        EntryT entry{};
    };

    SetAssocCache(unsigned sets, unsigned ways) : sets_(sets), ways_(ways)
    {
        dve_assert(sets >= 1 && ways >= 1, "degenerate cache geometry");
        ways_store_.resize(std::size_t(sets) * ways);
    }

    /** Construct geometry from capacity in bytes (64 B lines). */
    static SetAssocCache
    fromCapacity(std::uint64_t bytes, unsigned ways)
    {
        const std::uint64_t lines = bytes / lineBytes;
        dve_assert(lines % ways == 0, "capacity not divisible by ways");
        return SetAssocCache(static_cast<unsigned>(lines / ways), ways);
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    std::uint64_t capacityLines() const
    {
        return std::uint64_t(sets_) * ways_;
    }

    /** Look up a line, updating LRU on hit. Returns nullptr on miss. */
    EntryT *
    find(Addr line_num)
    {
        Slot *s = findSlot(line_num);
        if (!s)
            return nullptr;
        s->stamp = ++clock_;
        return &s->line.entry;
    }

    /** Look up without disturbing LRU (for inspection/invariants). */
    const EntryT *
    peek(Addr line_num) const
    {
        const Slot *s = const_cast<SetAssocCache *>(this)
                            ->findSlot(line_num);
        return s ? &s->line.entry : nullptr;
    }

    /**
     * Insert a line, evicting the LRU way if the set is full.
     * The line must not already be resident.
     * @return the evicted line, if any.
     */
    std::optional<Line>
    insert(Addr line_num, EntryT entry)
    {
        dve_assert(!findSlot(line_num), "double insert of line ", line_num);
        const std::size_t base = setBase(line_num);

        Slot *victim = nullptr;
        for (unsigned w = 0; w < ways_; ++w) {
            Slot &s = ways_store_[base + w];
            if (!s.valid) {
                victim = &s;
                break;
            }
            if (!victim || s.stamp < victim->stamp)
                victim = &s;
        }

        std::optional<Line> evicted;
        if (victim->valid)
            evicted = victim->line;
        victim->valid = true;
        victim->line = Line{line_num, std::move(entry)};
        victim->stamp = ++clock_;
        return evicted;
    }

    /** Remove a line if resident. @return true if it was present. */
    bool
    erase(Addr line_num)
    {
        Slot *s = findSlot(line_num);
        if (!s)
            return false;
        s->valid = false;
        return true;
    }

    /** Number of resident lines (O(capacity); for tests/stats). */
    std::uint64_t
    residentLines() const
    {
        std::uint64_t n = 0;
        for (const auto &s : ways_store_)
            n += s.valid;
        return n;
    }

    /**
     * Visit every resident line. Takes the callable by deduced type so
     * per-sweep invariant lambdas inline instead of paying a
     * std::function construction per call.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &s : ways_store_) {
            if (s.valid)
                fn(s.line.lineNum, s.line.entry);
        }
    }

    /** Const traversal (inspection only). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &s : ways_store_) {
            if (s.valid)
                fn(s.line.lineNum, s.line.entry);
        }
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint64_t stamp = 0;
        Line line{};
    };

    std::size_t setBase(Addr line_num) const
    {
        return std::size_t(line_num % sets_) * ways_;
    }

    Slot *
    findSlot(Addr line_num)
    {
        const std::size_t base = setBase(line_num);
        for (unsigned w = 0; w < ways_; ++w) {
            Slot &s = ways_store_[base + w];
            if (s.valid && s.line.lineNum == line_num)
                return &s;
        }
        return nullptr;
    }

    unsigned sets_;
    unsigned ways_;
    std::uint64_t clock_ = 0;
    std::vector<Slot> ways_store_;
};

} // namespace dve

#endif // DVE_CACHE_SA_CACHE_HH
