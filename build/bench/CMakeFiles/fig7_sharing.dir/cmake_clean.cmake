file(REMOVE_RECURSE
  "CMakeFiles/fig7_sharing.dir/fig7_sharing.cc.o"
  "CMakeFiles/fig7_sharing.dir/fig7_sharing.cc.o.d"
  "fig7_sharing"
  "fig7_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
