file(REMOVE_RECURSE
  "libdve_fault.a"
)
