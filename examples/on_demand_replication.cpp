/**
 * @file
 * On-demand replication via the Replica Map Table (paper Sec. V-D).
 *
 * Plays the role of the OS/control plane: a machine starts with
 * replication off (full capacity available), a "mission-critical"
 * workload arrives and the idle half of memory is carved into replicas
 * for its hot region, and finally a capacity crunch reclaims the pages.
 * A last phase replays the story with the epoch-driven policy engine in
 * charge: hotness earns every replica under a finite page budget, with
 * no OS page map at all. Each phase runs on a fresh machine so the
 * comparison is cache-fair.
 */

#include <cstdio>

#include "sys/system.hh"

using namespace dve;

namespace
{

/** Map replica pages for the workload's shared region. */
void
replicateSharedRegion(DveEngine &dve, const WorkloadProfile &wl)
{
    const Addr first_page = 0x1000'0000 / pageBytes;
    const Addr pages = wl.sharedBytes / pageBytes;
    for (Addr p = 0; p < pages; ++p) {
        const Addr page = first_page + p;
        const Addr line = page << (pageShift - lineShift);
        dve.enableReplication(page, 1 - dve.homeSocket(line));
    }
}

} // namespace

int
main()
{
    const WorkloadProfile &wl = workloadByName("graph500");
    const double scale = 0.15;

    std::printf("On-demand replication with the RMT (deny protocol)\n\n");

    // Phase 1: replication disabled -- full capacity, NUMA behaviour.
    SystemConfig cfg;
    cfg.scheme = SchemeKind::DveDeny;
    cfg.dve.replicateAll = false;
    System plain(cfg);
    const auto before = plain.run(wl, scale);
    std::printf("phase 1 (RMT empty)        : roi %7.1f us, replica "
                "reads %6.0f\n",
                ticksToNs(before.roiTime) / 1000.0,
                before.extra.at("replica_local_reads"));

    // Phase 2: the control plane flags the workload as critical; the
    // OS maps replica pages for its shared (stateful) region onto the
    // idle memory of the opposite socket before launch.
    System critical(cfg);
    replicateSharedRegion(*critical.dveEngine(), wl);
    std::printf("\nmapped %llu replica pages (%.0f MB of idle capacity "
                "now hot-standby)\n",
                static_cast<unsigned long long>(
                    critical.dveEngine()->replicaMap().mappedPages()),
                double(wl.sharedBytes) / (1 << 20));
    const auto during = critical.run(wl, scale);
    std::printf("phase 2 (region replicated): roi %7.1f us, replica "
                "reads %6.0f  -> %.2fx speedup\n",
                ticksToNs(during.roiTime) / 1000.0,
                during.extra.at("replica_local_reads"),
                double(before.roiTime) / double(during.roiTime));
    std::printf("   ...and the region now survives chip/channel/"
                "controller faults on either socket.\n");

    // Phase 3: capacity crunch -- the OS reclaims the replica pages and
    // hot-plugs them back into the free pool; behaviour (and the
    // protection level) returns to baseline.
    auto *dve = critical.dveEngine();
    const Addr first_page = 0x1000'0000 / pageBytes;
    const Addr pages = wl.sharedBytes / pageBytes;
    for (Addr p = 0; p < pages; ++p)
        dve->disableReplication(first_page + p);
    std::printf("\nphase 3: capacity crunch, %llu pages reclaimed; RMT "
                "now holds %llu pages\n",
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(
                    dve->replicaMap().mappedPages()));

    System reclaimed(cfg);
    const auto after = reclaimed.run(wl, scale);
    std::printf("phase 3 rerun (fresh)      : roi %7.1f us, replica "
                "reads %6.0f (baseline behaviour restored)\n",
                ticksToNs(after.roiTime) / 1000.0,
                after.extra.at("replica_local_reads"));

    // Phase 4: the same machine, but nobody maps pages by hand -- the
    // epoch-driven policy engine watches per-page heat and promotes the
    // hot ones through the repair path, under a budget far smaller than
    // the shared region so cold replicas are demoted to make room.
    constexpr std::size_t budgetPages = 64;
    SystemConfig pcfg = cfg;
    pcfg.dve.policy.enabled = true;
    pcfg.dve.policy.globalBudget = budgetPages;
    System adaptive(pcfg);
    const auto demand = adaptive.run(wl, scale);
    std::printf("\nphase 4 (policy-driven)    : roi %7.1f us, replica "
                "reads %6.0f\n",
                ticksToNs(demand.roiTime) / 1000.0,
                demand.extra.at("replica_local_reads"));
    std::printf("   the policy promoted %.0f pages and demoted %.0f "
                "across %.0f epochs\n   (budget %llu pages): hotness "
                "earned every replica, no OS page map needed.\n",
                demand.extra.at("policy_promotions"),
                demand.extra.at("policy_demotions"),
                demand.extra.at("policy_epochs"),
                static_cast<unsigned long long>(budgetPages));
    return 0;
}
