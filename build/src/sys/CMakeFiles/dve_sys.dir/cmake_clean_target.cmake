file(REMOVE_RECURSE
  "libdve_sys.a"
)
