/**
 * @file
 * Seeded adversarial scenario generator.
 *
 * Emits interleaved op streams shaped to stress exactly the protocol
 * corners where coherence bugs hide:
 *
 *  - conflict-heavy sharing: most accesses land on a small hot set of
 *    lines touched from every socket (same-line read/write races), with
 *    caches far smaller than the footprint so dirty evictions -- the
 *    writeback storms that drive replica updates -- happen constantly;
 *  - epoch-boundary flips: under dve-dynamic the scenario's tiny epoch
 *    length forces frequent allow/deny switches mid-stream, the exact
 *    transition the once-shipped RM-marker-refresh bug needed;
 *  - lifecycle chaos woven into the same stream: DUE bursts (chip/row
 *    faults on the footprint), link-flap and socket-offline episodes,
 *    heals, and scrub/maintenance passes that run repair while lines are
 *    still degraded;
 *  - aggressor-pattern hammering (hammerMode): most accesses cycle the
 *    rows of a fixed aggressor pair in one bank while the fault steps
 *    become scripted RowDisturb injections on the adjacent victim rows,
 *    so the invariant monitors run against a read-disturbance attack
 *    (the runner drives the fault registry directly, so the generator
 *    scripts the disturbance outcome instead of replaying activation
 *    counters).
 *
 * Safety bound: at most two concurrent DRAM-scope faults per socket.
 * The Dvé campaign codec (TSD) detects up to three failed chips per
 * codeword; beyond that corruption could alias into a valid word and
 * produce a *legitimate* SDC, which would falsely trip the data-value
 * monitor. The generator stays strictly inside detection capability so
 * every monitor firing is a real protocol bug.
 *
 * Generation is a pure function of GeneratorConfig (one seeded Rng), so
 * a scenario can always be regenerated from (seed, knobs) alone.
 */

#ifndef DVE_FUZZ_GENERATOR_HH
#define DVE_FUZZ_GENERATOR_HH

#include <cstdint>

#include "fuzz/scenario.hh"

namespace dve
{

/** Shape of one generated scenario. */
struct GeneratorConfig
{
    std::uint64_t seed = 1;
    std::uint64_t ops = 400;     ///< total steps to emit
    unsigned sockets = 2;
    unsigned coresPerSocket = 8;
    unsigned footprintPages = 8;
    DveProtocol protocol = DveProtocol::Dynamic;
    std::uint64_t epochOps = 64;     ///< small: frequent epoch flips
    std::uint64_t sampleGroups = 4;
    double writeFraction = 0.45;     ///< of accesses
    unsigned hotLines = 6;           ///< conflict-set size
    double hotFraction = 0.75;       ///< accesses landing on the hot set
    double faultFraction = 0.04;     ///< steps that are inject/heal
    double healShare = 0.45;         ///< of fault steps that heal
    double fabricShare = 0.25;       ///< of injects that are fabric-scope
    double scrubFraction = 0.01;     ///< steps that patrol-scrub
    double maintFraction = 0.02;     ///< steps that run maintenance
    bool bugRmMarkerRefresh = false;     ///< arm the deep seeded bug
    bool bugSkipDenyInvalidate = false;  ///< arm the shallow seeded bug
    /** Arm the pool seeded bug (lost write-through demotion skipped). */
    bool bugSkipDemotionOnPartition = false;
    /** Far-memory pool mode: the engine replicates onto poolNodes pool
     *  nodes and the fabric share of injects becomes pool-scale episodes
     *  (PoolNodeOffline on a random node, or FabricPartition), still
     *  bounded to one concurrent fabric fault system-wide. */
    bool poolMode = false;
    unsigned poolNodes = 3;
    /** Aggressor-pattern mode: accesses hammer one bank's aggressor
     *  rows and injects become RowDisturb faults on the victim rows.
     *  Wants footprintPages >= 32 so the victim rows are observable. */
    bool hammerMode = false;
    double hammerFraction = 0.7; ///< accesses landing on aggressor rows
    /** Replication-policy mode: arms the on-demand policy with a finite
     *  global budget (the engine starts with nothing replicated), walks
     *  the conflict set across the footprint phase by phase so
     *  promotion/demotion churn never settles, and retunes the budget
     *  with a `step b` at each phase boundary. */
    bool policyMode = false;
    std::uint64_t policyBudget = 4;     ///< global replica budget (pages)
    std::uint64_t policyNodeBudget = 0; ///< per-pool-node cap (0 = off)
    std::uint64_t policyEpochOps = 48;  ///< policy epoch length
    unsigned policyPhases = 4;          ///< hot-window shifts per run
    /** Metadata-fault mode: a share of injects become Metadata-scope
     *  faults on the control structures (home directory, replica
     *  directory backing, replica map) over the same footprint the
     *  access stream hammers, so corrupted entries actually get
     *  consulted. Metadata faults sit outside the codeword-aliasing
     *  bound (they corrupt control state, not data), so they are not
     *  counted against the two-DRAM-faults-per-socket cap. */
    bool metadataMode = false;
    /** Tier the metadata arrays run under. Parity is the honest default
     *  (clean sweeps must stay violation-free); none is the SDC story
     *  and legitimately fires the data-value monitor. */
    MetadataProtection metaProtection = MetadataProtection::Parity;
    double metaShare = 0.5; ///< of (non-fabric) injects that hit metadata
    /** Arm the metadata seeded bug (journal replay skipped on scrub). */
    bool bugSkipRebuildOnScrub = false;
};

/** Generate one scenario (deterministic in @p cfg). */
FuzzScenario generateScenario(const GeneratorConfig &cfg);

} // namespace dve

#endif // DVE_FUZZ_GENERATOR_HH
