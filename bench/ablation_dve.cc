/**
 * @file
 * Ablations beyond the paper's headline figures:
 *  (a) speculative replica access on/off (Sec. V-C5 claims the latency
 *      win outweighs the squash bandwidth);
 *  (b) on-demand replication coverage via the RMT (Sec. V-D): sweep the
 *      fraction of shared pages that are replicated;
 *  (c) 4-socket scaling: Dvé's fixed mapping on a larger NUMA machine.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace dve;

namespace
{

std::vector<RunResult>
speculationAblation(double scale)
{
    bench::printHeader("Ablation (a): speculative replica access");
    TextTable t({"benchmark", "deny+spec", "deny-no-spec",
                 "spec benefit"});
    std::vector<double> on, off;
    // The four most memory-intensive workloads show the effect best;
    // three sweep points each: baseline, deny+spec, deny-no-spec.
    constexpr std::size_t n_wl = 4;
    const auto runs = bench::runMatrix(n_wl * 3, [&](std::size_t p) {
        const auto &wl = table3Workloads()[p / 3];
        if (p % 3 == 0)
            return bench::runScheme(SchemeKind::BaselineNuma, wl, scale);
        SystemConfig cfg = bench::paperConfig(SchemeKind::DveDeny);
        cfg.dve.speculativeReplicaRead = p % 3 == 1;
        return bench::runScheme(SchemeKind::DveDeny, wl, scale, &cfg);
    });
    for (std::size_t i = 0; i < n_wl; ++i) {
        const auto &base = runs[i * 3];
        const auto &r1 = runs[i * 3 + 1];
        const auto &r0 = runs[i * 3 + 2];
        const double s1 = double(base.roiTime) / double(r1.roiTime);
        const double s0 = double(base.roiTime) / double(r0.roiTime);
        on.push_back(s1);
        off.push_back(s0);
        t.addRow({table3Workloads()[i].name, TextTable::num(s1, 3),
                  TextTable::num(s0, 3), TextTable::pct(s1 / s0)});
    }
    t.addRow({"geomean", TextTable::num(bench::geomean(on), 3),
              TextTable::num(bench::geomean(off), 3),
              TextTable::pct(bench::geomean(on) / bench::geomean(off))});
    t.print(std::cout);
    return runs;
}

std::vector<RunResult>
rmtCoverageSweep(double scale)
{
    bench::printHeader("Ablation (b): on-demand replication coverage "
                       "(fraction of pages replicated via the RMT)");
    const auto &wl = workloadByName("xsbench");
    const std::vector<double> covers = {0.0, 0.25, 0.5, 0.75, 1.0};

    // Point 0 is the NUMA baseline; points 1..N the coverage fractions.
    const auto runs =
        bench::runMatrix(1 + covers.size(), [&](std::size_t p) {
            if (p == 0)
                return bench::runScheme(SchemeKind::BaselineNuma, wl,
                                        scale);
            const double cover = covers[p - 1];
            SystemConfig cfg = bench::paperConfig(SchemeKind::DveDeny);
            cfg.dve.replicateAll = false;
            System sys(cfg);
            // Replicate the leading fraction of the shared region's
            // pages.
            const Addr shared_base_page = 0x1000'0000 / pageBytes;
            const Addr total_pages = wl.sharedBytes / pageBytes;
            const Addr n =
                static_cast<Addr>(cover * double(total_pages));
            auto *dve = sys.dveEngine();
            for (Addr pg = 0; pg < n; ++pg) {
                const Addr page = shared_base_page + pg;
                const Addr line = page << (pageShift - lineShift);
                const unsigned home = dve->homeSocket(line);
                dve->enableReplication(page, 1 - home);
            }
            return sys.run(wl, scale);
        });
    const auto &base = runs[0];

    TextTable t({"coverage", "speedup vs NUMA", "replica reads",
                 "extra capacity used"});
    for (std::size_t ci = 0; ci < covers.size(); ++ci) {
        const double cover = covers[ci];
        const auto &r = runs[1 + ci];
        t.addRow({TextTable::num(cover * 100, 0) + "%",
                  TextTable::num(double(base.roiTime)
                                     / double(r.roiTime),
                                 3),
                  TextTable::num(r.extra.at("replica_local_reads"), 0),
                  TextTable::num(cover * double(wl.sharedBytes)
                                     / (1 << 20),
                                 0)
                      + " MB"});
    }
    t.print(std::cout);
    std::printf("\nPartial coverage gives proportional benefit: "
                "reliability/performance are bought page-by-page with "
                "idle capacity.\n");
    return runs;
}

std::vector<RunResult>
fourSocketScaling(double scale)
{
    bench::printHeader("Ablation (c): 4-socket NUMA scaling");
    TextTable t({"benchmark", "2-socket deny speedup",
                 "4-socket deny speedup"});
    const std::vector<const char *> names = {"backprop", "graph500",
                                             "xsbench"};
    // Four points per workload: (2,4 sockets) x (baseline, deny).
    const auto runs =
        bench::runMatrix(names.size() * 4, [&](std::size_t p) {
            const auto &wl = workloadByName(names[p / 4]);
            const unsigned sockets = (p / 2) % 2 ? 4u : 2u;
            SystemConfig cfg =
                bench::paperConfig(SchemeKind::BaselineNuma);
            cfg.engine.sockets = sockets;
            cfg.threads = sockets * 8;
            return bench::runScheme(p % 2 ? SchemeKind::DveDeny
                                          : SchemeKind::BaselineNuma,
                                    wl, scale, &cfg);
        });
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (unsigned s = 0; s < 2; ++s) {
            const auto &base = runs[w * 4 + s * 2];
            const auto &dve = runs[w * 4 + s * 2 + 1];
            row.push_back(TextTable::num(
                double(base.roiTime) / double(dve.roiTime), 3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::printf("\nWith one replica per page, only the home-adjacent "
                "socket gains a local copy: on 4 sockets just half of "
                "all misses can be served locally (vs. all of them on "
                "2), so per-page replication degree or topology-aware "
                "placement becomes the scaling lever -- the future-work "
                "direction the paper sketches.\n");
    return runs;
}

} // namespace

int
main()
{
    const double scale = bench::scaleFromEnv(0.3);
    std::vector<RunResult> all = speculationAblation(scale);
    for (auto &&r : rmtCoverageSweep(scale))
        all.push_back(std::move(r));
    for (auto &&r : fourSocketScaling(scale))
        all.push_back(std::move(r));
    bench::writeRunsJson("ablation_dve", all);
    return 0;
}
