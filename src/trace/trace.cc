#include "trace/trace.hh"

#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace dve
{

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Read: return "read";
      case OpType::Write: return "write";
      case OpType::Compute: return "compute";
      case OpType::Barrier: return "barrier";
      case OpType::Lock: return "lock";
      case OpType::Unlock: return "unlock";
    }
    return "?";
}

namespace
{

constexpr std::uint32_t traceMagic = 0x44564554; // "DVET"

template <typename T>
void
writeRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readRaw(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        dve_fatal("truncated trace stream");
    return v;
}

} // namespace

void
writeTraces(std::ostream &os, const ThreadTraces &traces)
{
    writeRaw(os, traceMagic);
    writeRaw(os, static_cast<std::uint32_t>(traces.size()));
    for (const auto &thread : traces) {
        writeRaw(os, static_cast<std::uint64_t>(thread.size()));
        for (const auto &op : thread) {
            writeRaw(os, static_cast<std::uint8_t>(op.type));
            writeRaw(os, op.arg);
            if (op.type == OpType::Read || op.type == OpType::Write)
                writeRaw(os, op.addr);
        }
    }
}

ThreadTraces
readTraces(std::istream &is)
{
    if (readRaw<std::uint32_t>(is) != traceMagic)
        dve_fatal("bad trace magic");
    const auto nthreads = readRaw<std::uint32_t>(is);
    ThreadTraces traces(nthreads);
    for (auto &thread : traces) {
        const auto nops = readRaw<std::uint64_t>(is);
        thread.reserve(nops);
        for (std::uint64_t i = 0; i < nops; ++i) {
            TraceOp op;
            const auto t = readRaw<std::uint8_t>(is);
            if (t > static_cast<std::uint8_t>(OpType::Unlock))
                dve_fatal("bad op type in trace");
            op.type = static_cast<OpType>(t);
            op.arg = readRaw<std::uint32_t>(is);
            if (op.type == OpType::Read || op.type == OpType::Write)
                op.addr = readRaw<Addr>(is);
            thread.push_back(op);
        }
    }
    return traces;
}

std::uint64_t
totalOps(const ThreadTraces &traces)
{
    std::uint64_t n = 0;
    for (const auto &t : traces)
        n += t.size();
    return n;
}

std::uint64_t
totalMemOps(const ThreadTraces &traces)
{
    std::uint64_t n = 0;
    for (const auto &t : traces) {
        for (const auto &op : t) {
            n += op.type == OpType::Read || op.type == OpType::Write;
        }
    }
    return n;
}

} // namespace dve
