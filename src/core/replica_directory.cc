#include "core/replica_directory.hh"

#include "common/logging.hh"

namespace dve
{

const char *
repStateName(RepState s)
{
    switch (s) {
      case RepState::Readable: return "Readable";
      case RepState::M: return "M";
      case RepState::RM: return "RM";
    }
    return "?";
}

ReplicaDirectory::ReplicaDirectory(unsigned socket, std::size_t capacity,
                                   bool oracular, unsigned region_lines)
    : socket_(socket), oracular_(oracular), regionLines_(region_lines),
      onChip_(oracular ? (std::size_t(1) << 30) : capacity),
      stats_("rdir" + std::to_string(socket))
{
    dve_assert(region_lines >= 1, "degenerate region size");
    stats_.add("onchip_hits", hits_);
    stats_.add("onchip_misses", misses_);
    stats_.add("installs", installs_);
    stats_.add("region_installs", regionInstalls_);
    stats_.add("region_invalidations", regionInvalidations_);
}

ReplicaDirectory::Lookup
ReplicaDirectory::lookup(Addr line)
{
    Lookup out;

    // Region permission covering the line? (coarse-grain allow entries)
    if (OnChip *r = onChip_.find(regionKeyBit | region(line))) {
        dve_assert(r->isRegion, "region key collision");
        ++hits_;
        out.onChipHit = true;
        out.regionReadable = true;
        out.entry = Entry{RepState::Readable, -1};
        return out;
    }

    if (OnChip *c = onChip_.find(line)) {
        ++hits_;
        out.onChipHit = true;
        out.entry = c->entry;
        return out;
    }

    ++misses_;
    const auto it = backing_.find(line);
    if (it != backing_.end())
        out.entry = it->second;
    return out;
}

void
ReplicaDirectory::install(Addr line, Entry e)
{
    ++installs_;
    if (e.state == RepState::Readable) {
        // Readable is the deny-protocol default: authoritative state is
        // "no entry"; cache the positive knowledge on-chip only.
        backing_.erase(line);
    } else {
        backing_[line] = e;
    }
    onChip_.insert(line, OnChip{false, e});
}

void
ReplicaDirectory::remove(Addr line)
{
    backing_.erase(line);
    onChip_.erase(line);
}

void
ReplicaDirectory::invalidateOnChip(Addr line)
{
    onChip_.erase(line);
}

void
ReplicaDirectory::installRegion(Addr line)
{
    ++regionInstalls_;
    onChip_.insert(regionKeyBit | region(line),
                   OnChip{true, Entry{RepState::Readable, -1}});
}

bool
ReplicaDirectory::removeRegion(Addr line)
{
    if (onChip_.erase(regionKeyBit | region(line))) {
        ++regionInvalidations_;
        return true;
    }
    return false;
}

bool
ReplicaDirectory::regionCovers(Addr line) const
{
    return onChip_.peek(regionKeyBit | region(line)) != nullptr;
}

bool
ReplicaDirectory::hasReadablePermission(Addr line) const
{
    if (regionCovers(line))
        return true;
    const OnChip *c = onChip_.peek(line);
    return c && c->entry.has_value()
           && c->entry->state == RepState::Readable;
}

bool
ReplicaDirectory::hasLineEntry(Addr line) const
{
    if (backing_.count(line))
        return true;
    const OnChip *c = onChip_.peek(line);
    return c && c->entry.has_value();
}

std::optional<ReplicaDirectory::Entry>
ReplicaDirectory::peekBacking(Addr line) const
{
    const auto it = backing_.find(line);
    if (it == backing_.end())
        return std::nullopt;
    return it->second;
}

void
ReplicaDirectory::drainPermissions()
{
    onChip_.clear();
    // Authoritative deny entries (RM / M) survive the drain: losing them
    // would let stale replicas be read after a protocol switch.
}

} // namespace dve
