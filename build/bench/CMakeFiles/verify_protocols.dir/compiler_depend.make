# Empty compiler generated dependencies file for verify_protocols.
# This may be replaced when dependencies are built.
