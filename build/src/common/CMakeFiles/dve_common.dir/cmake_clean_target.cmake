file(REMOVE_RECURSE
  "libdve_common.a"
)
