# Empty dependencies file for dve_ecc.
# This may be replaced when dependencies are built.
