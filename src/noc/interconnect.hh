/**
 * @file
 * Whole-system interconnect: one mesh per socket plus point-to-point
 * inter-socket links.
 *
 * Latency model (Table II): one core-clock cycle per mesh hop inside a
 * socket; a fixed per-traversal latency (default 50 ns) on the inter-socket
 * link. Every socket attaches its inter-socket link at a gateway tile.
 *
 * The fabric is also the system's traffic meter: Fig 8 of the paper reports
 * inter-socket traffic, which we account in messages and bytes, split into
 * control and data classes.
 */

#ifndef DVE_NOC_INTERCONNECT_HH
#define DVE_NOC_INTERCONNECT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/fault.hh"
#include "noc/mesh.hh"

namespace dve
{

/** A network endpoint: a tile within a socket's mesh. */
struct NodeId
{
    unsigned socket = 0;
    unsigned tile = 0;

    bool operator==(const NodeId &) const = default;
};

/** Message size classes used for byte accounting. */
enum class MsgClass : std::uint8_t
{
    Control, ///< requests, acks, invalidations (header only)
    Data,    ///< carries a full cache line
};

/** Outcome of a fault-aware send attempt. */
enum class SendStatus : std::uint8_t
{
    Ok,         ///< delivered; latency is valid
    Dropped,    ///< lossy link ate the message (sender sees a timeout)
    LinkFailed, ///< link hard-down or an endpoint socket is offline
};

/** Result of Interconnect::trySend. */
struct SendResult
{
    SendStatus status = SendStatus::Ok;
    Tick latency = 0; ///< delivery latency; 0 unless status == Ok

    bool ok() const { return status == SendStatus::Ok; }
};

/** Static configuration of the fabric. */
struct NocConfig
{
    unsigned sockets = 2;
    unsigned meshCols = 4;
    unsigned meshRows = 2;
    Tick hopLatency = 333;                   ///< 1 cycle @ 3 GHz
    Tick interSocketLatency = 50 * ticksPerNs; ///< each traversal
    unsigned gatewayTile = 0;                ///< link attach point
    unsigned controlBytes = 8;
    unsigned dataBytes = 72;                 ///< 64B line + header
    /** Host-to-far-memory-pool link traversal (CXL-style: noticeably
     *  slower than the socket-to-socket link). */
    Tick poolLinkLatency = 400 * ticksPerNs;
};

/**
 * The system fabric. Thread-unsafe by design: the simulator is
 * single-threaded and deterministic.
 */
class Interconnect
{
  public:
    explicit Interconnect(const NocConfig &cfg);

    const NocConfig &config() const { return cfg_; }

    /** Latency from @p src to @p dst without traffic accounting. */
    Tick latency(NodeId src, NodeId dst) const;

    /**
     * Account a message from @p src to @p dst and return its latency.
     * Inter-socket messages bump the Fig 8 counters. Fault-blind: use
     * trySend for paths that must observe fabric faults.
     */
    Tick send(NodeId src, NodeId dst, MsgClass cls);

    /**
     * Attach a fault registry (and seed the lossy-link RNG): subsequent
     * trySend calls consult it per inter-socket message. The RNG is only
     * drawn while a lossy fault is active on the traversed link, so
     * fault-free runs stay byte-identical to the unattached fabric.
     */
    void attachFaults(const FaultRegistry *reg, std::uint64_t seed);

    /**
     * Fault-aware send. Intra-socket messages never fail. An inter-socket
     * message fails fast (LinkFailed, no traffic accounted) when the link
     * is down or either endpoint socket is offline, and may be Dropped by
     * an active lossy fault (deterministic from the attached seed). A
     * delivery over a lossy link pays the fault's extra delay.
     */
    SendResult trySend(NodeId src, NodeId dst, MsgClass cls);

    /** Is the (possibly degraded) path between two sockets usable? */
    bool pathUp(unsigned a, unsigned b) const;

    /**
     * Fault-aware send from a host tile to far-memory pool node
     * @p pool_node. Fails fast (LinkFailed, no traffic accounted) when
     * the node is offline or the pool fabric is partitioned; a delivery
     * is accounted as inter-socket traffic and pays the mesh walk to the
     * gateway plus the (slower) pool link traversal.
     */
    SendResult trySendPool(NodeId src, unsigned pool_node, MsgClass cls);

    /** Is far-memory pool node @p node reachable right now? */
    bool poolPathUp(unsigned node) const;

    /** Inter-socket messages sent so far. */
    std::uint64_t interSocketMessages() const
    {
        flushPending();
        return interSocketMsgs_.value();
    }

    /** Inter-socket bytes sent so far (the Fig 8 metric). */
    std::uint64_t interSocketBytes() const
    {
        flushPending();
        return interSocketBytes_.value();
    }

    /** Mesh of socket @p s, for link-load inspection. */
    const Mesh &mesh(unsigned s) const { return meshes_[s]; }

    /** Messages eaten by a lossy link so far. */
    std::uint64_t droppedMessages() const { return droppedMsgs_.value(); }

    /** Sends that failed fast on a dead link/socket so far. */
    std::uint64_t failedSends() const { return failedSends_.value(); }

    /** Deliveries that paid a lossy link's extra delay so far. */
    std::uint64_t delayedMessages() const { return delayedMsgs_.value(); }

    /** Reset all traffic counters (used at ROI boundaries). */
    void resetTraffic();

    /** Stats registered under "noc". */
    const StatGroup &stats() const
    {
        flushPending();
        return stats_;
    }

    /** Per-message delivery latency distribution (ticks). */
    const Histogram &hopLatency() const
    {
        flushPending();
        return hopLatency_;
    }

  private:
    unsigned bytesFor(MsgClass cls) const
    {
        return cls == MsgClass::Data ? cfg_.dataBytes : cfg_.controlBytes;
    }

    /**
     * Send-path traffic staging: send() bumps this POD block and the
     * counters/histogram absorb it lazily. Every accessor that exposes
     * the counters flushes first, so readers never see a stale view.
     */
    struct PendingTraffic
    {
        std::uint64_t intraMsgs = 0;
        std::uint64_t intraHops = 0;
        std::uint64_t interMsgs = 0;
        std::uint64_t interBytes = 0;
        std::uint64_t interCtrl = 0;
        std::uint64_t interData = 0;
        unsigned nLat = 0;
        std::array<Tick, 64> lat;
    };

    void flushPending() const;

    void noteLatency(Tick lat)
    {
        if (pend_.nLat == pend_.lat.size())
            flushPending();
        pend_.lat[pend_.nLat++] = lat;
    }

    NocConfig cfg_;
    std::vector<Mesh> meshes_;
    const FaultRegistry *faults_ = nullptr;
    Rng lossyRng_{0};

    mutable PendingTraffic pend_;
    mutable Counter intraMsgs_;
    mutable Counter intraHops_;
    mutable Counter interSocketMsgs_;
    mutable Counter interSocketBytes_;
    mutable Counter interSocketCtrlMsgs_;
    mutable Counter interSocketDataMsgs_;
    Counter droppedMsgs_;
    Counter failedSends_;
    Counter delayedMsgs_;
    mutable Histogram hopLatency_;
    StatGroup stats_;
};

} // namespace dve

#endif // DVE_NOC_INTERCONNECT_HH
