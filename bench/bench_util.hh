/**
 * @file
 * Shared helpers for the experiment harnesses: trace-scale control,
 * parallel scheme x workload sweeps, and geometric means over the
 * paper's workload groups.
 *
 * Every harness accepts DVE_BENCH_SCALE (default varies per experiment)
 * to trade runtime for statistical weight; results are normalized, so
 * the paper-shape conclusions are stable across scales. DVE_BENCH_JOBS
 * fans the sweep points out over worker threads (default: hardware
 * concurrency; 1 = serial): each point builds its own System, and
 * results come back ordered by point index, so the printed tables are
 * identical at any job count.
 */

#ifndef DVE_BENCH_BENCH_UTIL_HH
#define DVE_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sys/system.hh"

namespace dve
{
namespace bench
{

/**
 * Trace scale from the environment, with a per-bench default.
 *
 * DVE_BENCH_SCALE must be a positive number with no trailing garbage:
 * "0.5" parses, "2x" or "fast" warn and fall back to the default
 * (std::atof used to silently read "2x" as 2 and map garbage to 0).
 */
inline double
scaleFromEnv(double def)
{
    const char *s = std::getenv("DVE_BENCH_SCALE");
    if (!s || !*s)
        return def;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !std::isfinite(v) || v <= 0) {
        dve_warn("DVE_BENCH_SCALE='", s,
                 "' is not a positive number; using ", def);
        return def;
    }
    return v;
}

/**
 * Geometric mean of a vector of positive values.
 *
 * Input contract: entries must be positive (they are ratios -- speedups,
 * normalized traffic, EDP). Non-positive entries would silently turn
 * the whole mean into NaN/-inf via std::log, poisoning every normalized
 * figure downstream; instead they are skipped with a warning. An empty
 * (or fully skipped) input returns 0.0 -- a recognizable "no data"
 * sentinel, since no genuine ratio geomean is 0.
 */
inline double
geomean(const std::vector<double> &v)
{
    double log_sum = 0;
    std::size_t n = 0;
    for (double x : v) {
        if (!(x > 0) || !std::isfinite(x)) {
            dve_warn("geomean: skipping non-positive entry ", x);
            continue;
        }
        log_sum += std::log(x);
        ++n;
    }
    if (n == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(n));
}

/** Geomean of the first @p n entries (same input contract). */
inline double
geomeanTop(const std::vector<double> &v, std::size_t n)
{
    std::vector<double> head(v.begin(),
                             v.begin() + std::min(n, v.size()));
    return geomean(head);
}

/** Build a Table II system for one scheme (optionally tweaked). */
inline SystemConfig
paperConfig(SchemeKind scheme)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    return cfg;
}

/**
 * Event-tracer ring capacity from DVE_TRACE_CAPACITY (records).
 *
 * Unset/empty/0 disables tracing (the default); a set value must be a
 * whole number with no trailing garbage or it warns and disables. Safe
 * to call from worker threads (pure getenv read).
 */
inline std::size_t
traceCapacityFromEnv()
{
    const char *s = std::getenv("DVE_TRACE_CAPACITY");
    if (!s || !*s)
        return 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') {
        dve_warn("DVE_TRACE_CAPACITY='", s,
                 "' is not a whole number; tracing disabled");
        return 0;
    }
    return static_cast<std::size_t>(v);
}

/** Run one workload on a fresh system of the given scheme. */
inline RunResult
runScheme(SchemeKind scheme, const WorkloadProfile &wl, double scale,
          const SystemConfig *base = nullptr)
{
    SystemConfig cfg = base ? *base : paperConfig(scheme);
    cfg.scheme = scheme;
    cfg.engine.traceCapacity = traceCapacityFromEnv();
    System sys(cfg);
    return sys.run(wl, scale);
}

/** Serialize a harness's runs as one deterministic JSON document. */
inline std::string
runsToJson(const std::string &bench_name,
           const std::vector<RunResult> &runs)
{
    std::string out =
        "{\"bench\": \"" + bench_name + "\",\n\"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        out += runs[i].toJson();
        out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

/**
 * Write BENCH_<name>.json (and, when tracing is on, one
 * TRACE_<name>_<index>.json per run) into DVE_BENCH_JSON_DIR (default:
 * the working directory). File output only -- stdout is untouched, so
 * the printed tables stay byte-identical whether or not artifacts are
 * written. Runs arrive ordered by sweep-point index, making the
 * document byte-identical at any DVE_BENCH_JOBS.
 */
inline void
writeRunsJson(const std::string &bench_name,
              const std::vector<RunResult> &runs)
{
    const char *dir = std::getenv("DVE_BENCH_JSON_DIR");
    const std::string prefix =
        dir && *dir ? std::string(dir) + "/" : std::string();

    const std::string doc = runsToJson(bench_name, runs);
    const std::string path = prefix + "BENCH_" + bench_name + ".json";
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
    } else {
        dve_warn("cannot write ", path);
    }

    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].traceJson.empty())
            continue;
        const std::string tpath = prefix + "TRACE_" + bench_name + "_"
                                  + std::to_string(i) + ".json";
        if (std::FILE *f = std::fopen(tpath.c_str(), "w")) {
            std::fwrite(runs[i].traceJson.data(), 1,
                        runs[i].traceJson.size(), f);
            std::fclose(f);
        } else {
            dve_warn("cannot write ", tpath);
        }
    }
}

/**
 * Evaluate @p n independent sweep points -- typically a flattened
 * scheme x workload matrix -- in parallel, returning results ordered by
 * point index.
 *
 * @p point is called with indices 0..n-1 and must be safe to run
 * concurrently: build a fresh System per call (runScheme() does) and
 * derive any randomness from the index alone. DVE_BENCH_JOBS picks the
 * worker count; jobs=1 reproduces the legacy serial loop exactly, and
 * because results are merged by index, the harness output is identical
 * either way.
 */
template <typename Fn>
auto
runMatrix(std::size_t n, Fn &&point)
    -> std::vector<decltype(point(std::size_t{0}))>
{
    return parallelMap(n, std::forward<Fn>(point), jobsFromEnv());
}

inline void
printHeader(const char *title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title);
}

} // namespace bench
} // namespace dve

#endif // DVE_BENCH_BENCH_UTIL_HH
