/**
 * @file
 * Cache-line codec: arranges a 64 B line plus check symbols across DRAM
 * chips and runs the configured detection/correction scheme.
 *
 * The chip <-> symbol mapping is the crux of memory reliability design and
 * is modelled explicitly so fault injection at chip granularity produces
 * exactly the symbol-error patterns each scheme was designed around:
 *
 *  - SecDed72_64    : 8 Hamming(72,64) words; a chip maps to one byte of
 *                     every word, so a chip failure aliases (not chipkill).
 *  - ChipkillSscDsd : RS(19,16) over GF(2^8), 4 codewords/line, one symbol
 *                     per chip per codeword (Virtualized-ECC style layout).
 *                     Minimum distance 4 = true SSC-DSD: any 1-chip failure
 *                     is corrected and any 2-chip failure is detected.
 *  - DsdDetect      : RS(18,16) over GF(2^8) run detect-only (Dvé+DSD);
 *                     distance 3 guarantees detection of 2 symbol errors.
 *  - TsdDetect      : RS(19,16) over GF(2^16), 2 codewords/line, one
 *                     16-bit symbol per chip (Multi-ECC style); guarantees
 *                     detection of up to 3 simultaneous chip failures
 *                     (Dvé+TSD).
 */

#ifndef DVE_ECC_LINE_CODEC_HH
#define DVE_ECC_LINE_CODEC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace dve
{

/** The 64 data bytes of one cache line. */
using LineBytes = std::array<std::uint8_t, 64>;

/** Protection scheme applied by a memory controller. */
enum class Scheme : std::uint8_t
{
    None,           ///< no check symbols: errors are silent
    SecDed72_64,    ///< Hamming SEC-DED per 64-bit word
    ChipkillSscDsd, ///< RS(19,16)/GF(2^8), correct 1 symbol, detect 2
    DsdDetect,      ///< RS(18,16)/GF(2^8), detection only
    TsdDetect,      ///< RS(19,16)/GF(2^16), detection only (3-symbol)
};

const char *schemeName(Scheme s);

/** A line as stored in DRAM: data payload plus check bytes. */
struct StoredLine
{
    LineBytes payload{};
    std::vector<std::uint8_t> check;

    bool operator==(const StoredLine &) const = default;
};

/** Encoder/decoder for one scheme. Stateless and shareable. */
class LineCodec
{
  public:
    explicit LineCodec(Scheme scheme);

    Scheme scheme() const { return scheme_; }

    /** Number of check bytes stored alongside the 64 data bytes. */
    unsigned checkBytes() const;

    /** Total chips the stored line spans (data + check chips). */
    unsigned chips() const;

    /** Compute check symbols for @p data. */
    StoredLine encode(const LineBytes &data) const;

    /** Decode outcome. */
    struct Outcome
    {
        EccStatus status = EccStatus::Clean;
        LineBytes data{}; ///< best-effort (possibly repaired) data
    };

    /**
     * Check (and for ChipkillSscDsd repair) a stored line read from DRAM.
     * A Clean/Corrected status with wrong data is a silent data corruption;
     * callers with a golden copy can observe it.
     */
    Outcome decode(const StoredLine &received) const;

    /** Bytes of @p line owned by chip @p chip (indices into a flat view
     *  where [0,64) is payload and [64, 64+checkBytes) is check). */
    std::vector<unsigned> chipBytes(unsigned chip) const;

    /** Corrupt every byte owned by @p chip with random wrong values. */
    void corruptChip(StoredLine &line, unsigned chip, Rng &rng) const;

    /** Flip a single bit (flat byte index, bit 0-7). */
    static void corruptBit(StoredLine &line, unsigned flat_byte,
                           unsigned bit);

  private:
    std::uint8_t &flatByte(StoredLine &line, unsigned idx) const;

    Scheme scheme_;
    // Lazily constructed RS codecs (null when unused by the scheme).
    const ReedSolomon *rs8_ = nullptr;  ///< RS(18,16) over GF(2^8), DSD
    const ReedSolomon *rs8ck_ = nullptr; ///< RS(19,16) over GF(2^8), SSC-DSD
    const ReedSolomon *rs16_ = nullptr; ///< RS(19,16) over GF(2^16), TSD
};

} // namespace dve

#endif // DVE_ECC_LINE_CODEC_HH
