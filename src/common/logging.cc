#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dve
{
namespace detail
{

namespace
{
std::atomic<std::uint64_t> warnings{0};
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throw rather than abort so that unit tests can observe panics;
    // an uncaught PanicError still terminates the process.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    warnings.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

std::uint64_t
warnCount()
{
    return warnings.load(std::memory_order_relaxed);
}

} // namespace detail
} // namespace dve
