file(REMOVE_RECURSE
  "CMakeFiles/test_dve_engine.dir/test_dve_engine.cc.o"
  "CMakeFiles/test_dve_engine.dir/test_dve_engine.cc.o.d"
  "test_dve_engine"
  "test_dve_engine.pdb"
  "test_dve_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dve_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
