#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace dve
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    dve_assert(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    dve_assert(row.size() == header_.size(),
               "row width ", row.size(), " != header width ",
               header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

std::string
TextTable::pct(double ratio, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision,
                  (ratio - 1.0) * 100.0);
    return buf;
}

} // namespace dve
