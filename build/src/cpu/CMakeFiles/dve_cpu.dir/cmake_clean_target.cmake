file(REMOVE_RECURSE
  "libdve_cpu.a"
)
