file(REMOVE_RECURSE
  "CMakeFiles/dve_cpu.dir/replay.cc.o"
  "CMakeFiles/dve_cpu.dir/replay.cc.o.d"
  "libdve_cpu.a"
  "libdve_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
