/**
 * @file
 * google-benchmark microbenchmarks of the performance-critical library
 * components: GF arithmetic, Reed-Solomon encode/decode, the line codec,
 * the event queue, mesh routing, cache arrays, and the replica
 * directory.
 */

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "cache/assoc_lru.hh"
#include "cache/sa_cache.hh"
#include "coherence/directory.hh"
#include "common/flat_map.hh"
#include "common/rng.hh"
#include "core/replica_directory.hh"
#include "ecc/line_codec.hh"
#include "mem/memory_controller.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sys/system.hh"
#include "trace/workloads.hh"

namespace
{

using namespace dve;

void
BM_GfMul(benchmark::State &state)
{
    const auto &gf = GaloisField::gf256();
    std::uint32_t a = 37, b = 91;
    for (auto _ : state) {
        a = gf.mul(a ? a : 1, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_GfMul);

void
BM_RsEncodeChipkill(benchmark::State &state)
{
    const ReedSolomon rs(GaloisField::gf256(), 19, 16);
    std::vector<std::uint32_t> msg(16, 0xA5);
    for (auto _ : state) {
        auto cw = rs.encode(msg);
        benchmark::DoNotOptimize(cw);
    }
}
BENCHMARK(BM_RsEncodeChipkill);

void
BM_RsDecodeCleanVsCorrupted(benchmark::State &state)
{
    const ReedSolomon rs(GaloisField::gf256(), 19, 16);
    Rng rng(1);
    std::vector<std::uint32_t> msg(16);
    for (auto &v : msg)
        v = static_cast<std::uint32_t>(rng.next(256));
    auto cw = rs.encode(msg);
    if (state.range(0))
        cw[5] ^= 0x42;
    for (auto _ : state) {
        auto r = rs.decode(cw, 1);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RsDecodeCleanVsCorrupted)->Arg(0)->Arg(1);

void
BM_LineCodecEncode(benchmark::State &state)
{
    const LineCodec codec(static_cast<Scheme>(state.range(0)));
    LineBytes data{};
    for (unsigned i = 0; i < 64; ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    for (auto _ : state) {
        auto stored = codec.encode(data);
        benchmark::DoNotOptimize(stored);
    }
}
BENCHMARK(BM_LineCodecEncode)
    ->Arg(static_cast<int>(Scheme::SecDed72_64))
    ->Arg(static_cast<int>(Scheme::ChipkillSscDsd))
    ->Arg(static_cast<int>(Scheme::TsdDetect));

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int fired = 0;
        for (Tick t = 0; t < 1000; ++t)
            q.schedule(t * 7 % 997, [&] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueChurn);

void
BM_EventQueueReplayPattern(benchmark::State &state)
{
    // The replay CPU's dominant pattern: schedule one event, run it,
    // schedule the next -- the queue oscillates around empty, which the
    // calendar queue turns into an O(1) re-anchor per event.
    EventQueue q;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        q.scheduleIn(300 + (fired % 64), [&] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueReplayPattern);

void
BM_EventQueueSteadyState(benchmark::State &state)
{
    // Steady-state kernel: 64 self-rescheduling chains with staggered
    // periods, the shape of a many-core simulation's event population.
    EventQueue q;
    std::uint64_t fired = 0;
    std::function<void(Tick)> chain = [&](Tick period) {
        ++fired;
        q.scheduleIn(period, [&chain, period] { chain(period); });
    };
    for (Tick c = 0; c < 64; ++c)
        q.schedule(c, [&chain, c] { chain(97 + c * 13); });
    for (auto _ : state) {
        q.run(256);
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueSteadyState);

void
BM_EventQueueSparseFar(benchmark::State &state)
{
    // Sparse population, long spans: 8 in-flight chains rescheduling
    // ~100 ns (1e5 ticks) ahead, the shape of a small-core simulation
    // waiting on memory. Stresses the calendar's bucket-skip path.
    EventQueue q;
    std::uint64_t fired = 0;
    std::function<void(Tick)> chain = [&](Tick period) {
        ++fired;
        q.scheduleIn(period, [&chain, period] { chain(period); });
    };
    for (Tick c = 0; c < 8; ++c)
        q.schedule(c, [&chain, c] { chain(100000 + c * 1367); });
    for (auto _ : state) {
        q.run(64);
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueSparseFar);

void
BM_MeshTraverse(benchmark::State &state)
{
    Mesh m(4, 2);
    unsigned i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.traverse(i % 8, (i * 3 + 5) % 8));
        ++i;
    }
}
BENCHMARK(BM_MeshTraverse);

void
BM_LlcLookup(benchmark::State &state)
{
    auto llc = SetAssocCache<int>::fromCapacity(8ULL << 20, 16);
    for (Addr l = 0; l < 100000; ++l)
        llc.insert(l * 3, static_cast<int>(l));
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(llc.find(probe * 3));
        probe = (probe + 7919) % 100000;
    }
}
BENCHMARK(BM_LlcLookup);

void
BM_ReplicaDirLookup(benchmark::State &state)
{
    ReplicaDirectory rd(0, 2048, false);
    for (Addr l = 0; l < 4096; ++l)
        rd.install(l, {RepState::Readable, -1});
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rd.lookup(probe));
        probe = (probe + 613) % 4096;
    }
}
BENCHMARK(BM_ReplicaDirLookup);

void
BM_DirectoryChurn(benchmark::State &state)
{
    // The coherence hot path against the home directory: lookup + bank
    // acquire/release + entry mutation over a strided line set.
    HomeDirectory dir(0);
    for (Addr l = 0; l < 4096; ++l)
        dir.lookup(l << 6).sharers = 1;
    Tick t = 0;
    Addr probe = 0;
    for (auto _ : state) {
        const Addr line = (probe * 613 % 4096) << 6;
        t = dir.acquire(line, t) + 10;
        DirEntry &e = dir.lookup(line);
        e.sharers |= 2;
        dir.release(line, t);
        benchmark::DoNotOptimize(dir.find(line));
        ++probe;
    }
}
BENCHMARK(BM_DirectoryChurn);

void
BM_MapFindFlatVsUnordered(benchmark::State &state)
{
    // Arg(0): 0 = std::unordered_map, 1 = FlatMap. Same strided key
    // population the directories see (line addresses, 64 B apart).
    constexpr Addr lines = 16384;
    std::unordered_map<Addr, std::uint64_t> um;
    FlatMap<Addr, std::uint64_t> fm;
    fm.reserve(lines);
    um.reserve(lines);
    for (Addr l = 0; l < lines; ++l) {
        um[l << 6] = l;
        fm[l << 6] = l;
    }
    Addr probe = 0;
    if (state.range(0)) {
        for (auto _ : state) {
            benchmark::DoNotOptimize(fm.find((probe * 613 % lines) << 6));
            ++probe;
        }
    } else {
        for (auto _ : state) {
            benchmark::DoNotOptimize(um.find((probe * 613 % lines) << 6));
            ++probe;
        }
    }
}
BENCHMARK(BM_MapFindFlatVsUnordered)->Arg(0)->Arg(1);

void
BM_MemoryControllerRead(benchmark::State &state)
{
    FaultRegistry faults;
    MemoryController mc("m", 0, DramConfig{}, Scheme::ChipkillSscDsd,
                        MirrorMode::None, &faults, 1);
    mc.write(0x1000, 42, 0);
    Tick t = 0;
    for (auto _ : state) {
        const auto r = mc.read(0x1000, t);
        t = r.readyAt;
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MemoryControllerRead);

void
BM_Fig6SliceEndToEnd(benchmark::State &state)
{
    // End-to-end throughput on a thin slice of the Fig 6 sweep: one
    // Table III workload through a full system. Arg(0): 0 = baseline
    // NUMA, 1 = dve-dynamic. Reported rate = simulated memory ops/sec.
    const auto &wl = table3Workloads().front();
    const SchemeKind scheme = state.range(0)
                                  ? SchemeKind::DveDynamic
                                  : SchemeKind::BaselineNuma;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.scheme = scheme;
        System sys(cfg);
        const RunResult r = sys.run(wl, 0.02);
        ops += r.memOps;
        benchmark::DoNotOptimize(r.roiTime);
    }
    state.counters["mem_ops_per_sec"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fig6SliceEndToEnd)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
